"""The rule catalogue.

Each rule encodes one of the recurring efficiency/correctness hazards the
paper's magnifying-glass profiling attributes framework slowdowns to:

* **HOTLOOP** — per-element Python iteration over array data inside the
  hot-path packages.  The exact pattern whose removal bought the ≈11x
  sampler win in PR 1; any single instance re-serializes a vectorized
  pipeline.
* **RNG-SEED** — unseeded ``np.random.default_rng()`` or legacy
  global-state ``np.random.*`` calls.  Nondeterminism makes paired
  framework comparisons (DGLite vs PyGLite on identical minibatches)
  unsound.
* **INPLACE-GRAD** — in-place mutation of a ``Tensor`` ``.data``/``.grad``
  buffer outside ``no_grad`` blocks or the optimizer/autograd-core
  modules.  Silently corrupts gradients because the tape closures capture
  buffers by reference.
* **PARAM-REG** — a ``Parameter`` built in ``Module.__init__`` but never
  registered on ``self``; it escapes ``parameters()`` and the optimizer
  never updates it.
* **DTYPE-DRIFT** — explicit promotion to float64 in hot-path packages;
  doubles GEMM/SpMM bytes and flops against the float32 feature tensors
  the whole cost model assumes.
* **ADD-AT** — ``np.add.at`` / ``np.subtract.at`` buffered scatter in the
  kernel-path packages; 10-50x slower than ``reduceat`` segment reduction
  over the adjacency's sorted edge order (PR 4's fast-path layer).  The
  deliberate reference fallbacks behind ``use_reference_kernels()`` carry
  justified suppressions.

All detection is purely syntactic (``ast``); rules accept rare false
positives, to be silenced with a justified inline suppression, in
exchange for zero runtime cost and no imports of the linted code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.lint.engine import FileContext, Finding, Rule

RULES: Dict[str, Rule] = {}

#: Packages whose inner loops the paper's profiling puts on the hot path.
HOT_PATH_PACKAGES = (
    "repro.sampling",
    "repro.kernels",
    "repro.tensor",
    "repro.frameworks",
)

#: Modules allowed to mutate ``.data``/``.grad`` in place: the autograd
#: core (defines the buffers) and the optimizers (their whole job).
INPLACE_EXEMPT_MODULES = {
    "repro.tensor.tensor",
    "repro.tensor.optim",
}


def register(cls: Type[Rule]) -> Type[Rule]:
    instance = cls()
    if instance.name in RULES:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    RULES[instance.name] = instance
    return cls


def resolve_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Registry lookup honoring a ``--select`` list (case-insensitive)."""
    if not select:
        return list(RULES.values())
    wanted = {name.strip().upper() for name in select if name.strip()}
    unknown = wanted - set(RULES)
    if unknown:
        raise KeyError(
            f"unknown rule(s) {sorted(unknown)}; available: {sorted(RULES)}"
        )
    return [rule for name, rule in RULES.items() if name in wanted]


# ---------------------------------------------------------------------------
# Shared AST helpers


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, "" for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _in_hot_path(ctx: FileContext) -> bool:
    return any(
        ctx.module == pkg or ctx.module.startswith(pkg + ".")
        for pkg in HOT_PATH_PACKAGES
    )


def _expr_span(node: ast.AST) -> tuple:
    line = getattr(node, "lineno", 1)
    return (line, getattr(node, "end_lineno", line) or line)


# ---------------------------------------------------------------------------
# HOTLOOP


def _is_array_sized_expr(node: ast.AST) -> bool:
    """Does ``node`` read the element count of an array-like?

    Matches ``len(x)``, ``x.size``, ``x.shape[i]`` — the idioms that turn
    a ``for``/``range`` into per-element iteration.
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "len" and node.args:
        return True
    if isinstance(node, ast.Attribute) and node.attr == "size":
        return True
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Attribute) \
            and node.value.attr == "shape":
        return True
    return False


def _hot_loop_reason(iter_node: ast.AST) -> Optional[str]:
    """Why iterating ``iter_node`` walks array elements one by one."""
    if isinstance(iter_node, ast.Call):
        func = iter_node.func
        name = dotted_name(func)
        if isinstance(func, ast.Name) and func.id == "range":
            # range(..., ..., step) is strided (minibatch) iteration, not
            # per-element — only unstrided ranges over an array's extent
            # walk elements one at a time.
            if len(iter_node.args) < 3 and any(
                _is_array_sized_expr(arg) for arg in iter_node.args
            ):
                return "range() over an array's element count"
            return None
        if isinstance(func, ast.Name) and func.id in ("enumerate", "zip", "map",
                                                      "filter", "reversed", "sorted"):
            for arg in iter_node.args:
                reason = _hot_loop_reason(arg)
                if reason:
                    return reason
            return None
        if isinstance(func, ast.Attribute) and func.attr == "tolist":
            return ".tolist() materializes the array into Python objects"
        if name.endswith("nditer") or name.endswith("ndenumerate"):
            return f"{name.rsplit('.', 1)[-1]}() iterates array elements in Python"
        return None
    if isinstance(iter_node, ast.Attribute) and iter_node.attr == "flat":
        return ".flat iterates array elements in Python"
    return None


@register
class HotLoopRule(Rule):
    name = "HOTLOOP"
    severity = "error"
    description = ("per-element Python loop over array data in a hot-path "
                   "package; vectorize it (this pattern cost ~11x in the "
                   "sampler before PR 1)")

    def applies(self, ctx: FileContext) -> bool:
        return _in_hot_path(ctx)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                reason = _hot_loop_reason(it)
                if reason:
                    yield self.finding(
                        ctx, node,
                        f"per-element Python loop over array data ({reason}); "
                        "replace with a vectorized numpy operation",
                        span=_expr_span(it),
                    )


# ---------------------------------------------------------------------------
# RNG-SEED

#: Legacy global-state numpy RNG entry points (non-exhaustive lists fail
#: open, so this covers everything the numpy docs group under "legacy").
LEGACY_RANDOM_FUNCS = {
    "seed", "rand", "randn", "randint", "random_integers", "random",
    "random_sample", "ranf", "sample", "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "binomial", "poisson", "beta",
    "gamma", "exponential", "pareto", "lognormal", "laplace", "logistic",
    "multinomial", "multivariate_normal", "geometric", "hypergeometric",
    "negative_binomial", "noncentral_chisquare", "chisquare", "dirichlet",
    "f", "gumbel", "logseries", "power", "rayleigh", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_t", "triangular",
    "vonmises", "wald", "weibull", "zipf", "bytes", "get_state", "set_state",
    "RandomState",
}


@register
class RngSeedRule(Rule):
    name = "RNG-SEED"
    severity = "error"
    description = ("unseeded np.random.default_rng() or legacy global-state "
                   "np.random.* call; thread a seeded Generator instead so "
                   "runs are reproducible and frameworks comparable")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            if name.endswith("random.default_rng") or name == "default_rng":
                first = node.args[0] if node.args else None
                seeded = bool(node.args or node.keywords)
                if isinstance(first, ast.Constant) and first.value is None:
                    seeded = False
                if not seeded:
                    yield self.finding(
                        ctx, node,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; pass an explicit seed or accept a "
                        "threaded Generator",
                        span=_expr_span(node),
                    )
            elif "." in name:
                head, leaf = name.rsplit(".", 1)
                # Anchor on the `random` *module* (np.random / stdlib
                # random), not arbitrary objects whose name ends in it.
                if (head == "random" or head.endswith(".random")) \
                        and leaf in LEGACY_RANDOM_FUNCS:
                    yield self.finding(
                        ctx, node,
                        f"legacy global-state RNG call {name}(); use a "
                        "seeded np.random.Generator threaded from the caller",
                        span=_expr_span(node),
                    )


# ---------------------------------------------------------------------------
# INPLACE-GRAD

#: ndarray methods that mutate their receiver in place.
MUTATING_ARRAY_METHODS = {"fill", "sort", "put", "resize", "partition",
                          "itemset", "setfield", "byteswap"}


def _tensor_buffer_attr(node: ast.AST) -> Optional[str]:
    """Return ".data"/".grad" when ``node`` addresses a Tensor buffer.

    Matches ``x.data`` / ``x.grad`` and subscripts thereof
    (``x.data[i]``).  Plain names called ``data``/``grad`` don't match —
    only attribute access does, since the hazard is reaching *into* a
    Tensor object someone else also holds.
    """
    if isinstance(node, ast.Subscript):
        return _tensor_buffer_attr(node.value)
    if isinstance(node, ast.Attribute) and node.attr in ("data", "grad"):
        return node.attr
    return None


def _inside_no_grad(ctx: FileContext, node: ast.AST) -> bool:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                if dotted_name(expr).split(".")[-1] == "no_grad":
                    return True
    return False


@register
class InplaceGradRule(Rule):
    name = "INPLACE-GRAD"
    severity = "error"
    description = ("in-place mutation of a Tensor .data/.grad buffer outside "
                   "no_grad blocks and the optimizer/autograd-core modules; "
                   "the tape captures buffers by reference, so this silently "
                   "corrupts gradients")

    def applies(self, ctx: FileContext) -> bool:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return False
        return ctx.module not in INPLACE_EXEMPT_MODULES

    def _flag(self, ctx: FileContext, node: ast.AST, buffer: str,
              verb: str) -> Optional[Finding]:
        if _inside_no_grad(ctx, node):
            return None
        return self.finding(
            ctx, node,
            f"{verb} of a Tensor .{buffer} buffer outside no_grad; wrap the "
            "mutation in `with no_grad():` or route it through the optimizer",
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.Assign):
                targets = []
                for t in node.targets:
                    targets.extend(t.elts if isinstance(t, ast.Tuple) else [t])
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATING_ARRAY_METHODS:
                buffer = _tensor_buffer_attr(node.func.value)
                if buffer:
                    f = self._flag(ctx, node, buffer,
                                   f"in-place .{node.func.attr}()")
                    if f:
                        yield f
                continue
            else:
                continue
            for target in targets:
                buffer = _tensor_buffer_attr(target)
                if buffer:
                    verb = ("augmented assignment"
                            if isinstance(node, ast.AugAssign) else "assignment")
                    f = self._flag(ctx, node, buffer, verb)
                    if f:
                        yield f


# ---------------------------------------------------------------------------
# PARAM-REG


def _name_loads(tree: ast.AST, name: str) -> Iterator[ast.Name]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == name \
                and isinstance(node.ctx, ast.Load):
            yield node


def _target_reaches_self(target: ast.AST) -> bool:
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_target_reaches_self(e) for e in target.elts)
    base = target
    while isinstance(base, (ast.Attribute, ast.Subscript)):
        base = base.value
    return isinstance(base, ast.Name) and base.id == "self"


def _is_registration_use(ctx: FileContext, use: ast.Name) -> bool:
    """Is this read of the local a plausible registration?

    Walking up from the read, container literals preserve identity;
    the first non-container ancestor decides: a call (``setattr``,
    ``append``, helper registrars) or ``return`` may register, an
    assignment registers iff a target chain reaches ``self``.  Any other
    expression (``w @ x``, ``w.data``) derives a *new* value, so the
    parameter itself stays invisible to ``parameters()``.
    """
    for ancestor in ctx.ancestors(use):
        if isinstance(ancestor, (ast.List, ast.Tuple, ast.Dict, ast.Set,
                                 ast.Starred)):
            continue
        if isinstance(ancestor, ast.Call):
            return True
        if isinstance(ancestor, ast.Assign):
            return any(_target_reaches_self(t) for t in ancestor.targets)
        if isinstance(ancestor, (ast.AnnAssign, ast.AugAssign)):
            return _target_reaches_self(ancestor.target)
        if isinstance(ancestor, ast.Return):
            return True
        return False
    return False


@register
class ParamRegRule(Rule):
    name = "PARAM-REG"
    severity = "error"
    description = ("Parameter created in a Module __init__ but never assigned "
                   "to self; it escapes parameters() so the optimizer never "
                   "updates it")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ctx.walk():
            if not isinstance(cls, ast.ClassDef):
                continue
            for fn in cls.body:
                if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and fn.name == "__init__":
                    yield from self._check_init(ctx, cls, fn)

    def _check_init(self, ctx: FileContext, cls: ast.ClassDef,
                    fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Expr) and self._is_parameter_call(node.value):
                yield self.finding(
                    ctx, node,
                    f"Parameter constructed in {cls.name}.__init__ is "
                    "discarded immediately; assign it to a self attribute",
                )
            elif isinstance(node, ast.Assign) and self._is_parameter_call(node.value):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    uses = [u for u in _name_loads(fn, target.id)
                            if u.lineno > node.lineno
                            or (u.lineno == node.lineno
                                and u.col_offset > target.col_offset)]
                    if not any(_is_registration_use(ctx, u) for u in uses):
                        yield self.finding(
                            ctx, node,
                            f"Parameter {target.id!r} in {cls.name}.__init__ "
                            "is never assigned to self (or registered via a "
                            "call); it will be missing from parameters()",
                        )

    @staticmethod
    def _is_parameter_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and dotted_name(node.func).split(".")[-1] == "Parameter")


# ---------------------------------------------------------------------------
# DTYPE-DRIFT

_F64_NAMES = {"float64", "double", "float_"}


def _is_float64_expr(node: ast.AST) -> bool:
    """Literal spellings of float64: np.float64, "float64", bare float."""
    if isinstance(node, ast.Constant) and node.value in ("float64", "double", "d"):
        return True
    name = dotted_name(node)
    if not name:
        return False
    leaf = name.split(".")[-1]
    return leaf in _F64_NAMES or name == "float"


@register
class DtypeDriftRule(Rule):
    name = "DTYPE-DRIFT"
    severity = "warning"
    description = ("explicit promotion to float64 in a hot-path package; the "
                   "stack's feature tensors are float32 and f64 doubles "
                   "GEMM/SpMM bytes+flops (suppress with a justification "
                   "where f64 is semantically required)")

    def applies(self, ctx: FileContext) -> bool:
        return _in_hot_path(ctx)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                if node.args and _is_float64_expr(node.args[0]):
                    yield self.finding(
                        ctx, node,
                        "astype to float64 promotes a float32 pipeline; keep "
                        "float32 or suppress with the reason f64 is required",
                        span=_expr_span(node),
                    )
                continue
            if dotted_name(func).split(".")[-1] == "float64":
                yield self.finding(
                    ctx, node,
                    "np.float64() constructs a double; keep the pipeline in "
                    "float32",
                    span=_expr_span(node),
                )
                continue
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_float64_expr(kw.value):
                    yield self.finding(
                        ctx, node,
                        "dtype=float64 allocates a double-precision array in "
                        "a float32 pipeline",
                        span=_expr_span(node),
                    )


# ---------------------------------------------------------------------------
# ADD-AT

#: Packages where an unbuffered-scatter ufunc `.at` call sits on the
#: kernel path.  Narrower than HOT_PATH_PACKAGES: sampling has no segment
#: structure to reduce over, so the rule doesn't apply there.
ADD_AT_PACKAGES = (
    "repro.kernels",
    "repro.frameworks",
    "repro.tensor",
)

#: ufuncs whose ``.at`` form the fast-path layer replaces with reduceat.
_SCATTER_UFUNCS = {"add", "subtract"}


@register
class AddAtRule(Rule):
    name = "ADD-AT"
    severity = "error"
    description = ("np.add.at/np.subtract.at scatter in a kernel-path "
                   "package; ufunc.at is 10-50x slower than reduceat segment "
                   "reduction over SparseAdj's sorted edge order — use "
                   "adj.sum_edges()/adj.max_edges() (suppress with a "
                   "justification where the unsorted fallback is deliberate)")

    def applies(self, ctx: FileContext) -> bool:
        return any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in ADD_AT_PACKAGES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            parts = name.split(".")
            if len(parts) >= 3 and parts[-1] == "at" \
                    and parts[-2] in _SCATTER_UFUNCS:
                yield self.finding(
                    ctx, node,
                    f"{name}() is a buffered per-index scatter; edges are "
                    "dst-sorted here, so use reduceat-based segment "
                    "reduction (adj.sum_edges) instead",
                    span=_expr_span(node),
                )


# ---------------------------------------------------------------------------
# TELEMETRY-LEAK

#: Metric classes that must be created through the MetricsRegistry.
TELEMETRY_METRIC_CLASSES = {"Counter", "Gauge", "Histogram"}

#: Span-opening context-manager factories.
_SPAN_FACTORIES = {"span", "phase", "maybe_span"}


def _telemetry_metric_imports(nodes) -> tuple:
    """(class name bindings, module aliases) for repro.telemetry imports.

    Tracks both ``from repro.telemetry... import Counter [as C]`` (class
    bindings) and ``from repro.telemetry import metrics as m`` / ``import
    repro.telemetry.metrics as m`` (module aliases through which
    ``m.Counter(...)`` still bypasses the registry).  ``nodes`` is the
    file's shared pre-walked node list (``ctx.walk()``).
    """
    classes: Dict[str, str] = {}
    modules: set = set()
    for node in nodes:
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.startswith("repro.telemetry"):
            for alias in node.names:
                if alias.name in TELEMETRY_METRIC_CLASSES:
                    classes[alias.asname or alias.name] = alias.name
                elif alias.name == "metrics":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("repro.telemetry.metrics", "repro.telemetry"):
                    modules.add(alias.asname or alias.name)
    return classes, modules


@register
class TelemetryLeakRule(Rule):
    name = "TELEMETRY-LEAK"
    severity = "error"
    description = ("telemetry bypassing its lifecycle: a span opened without "
                   "a context manager (start_span, or a span()/phase()/"
                   "maybe_span() result that is discarded) never closes and "
                   "wedges the tracer stack; a Counter/Gauge/Histogram "
                   "constructed directly instead of through the "
                   "MetricsRegistry is invisible to every exporter")

    def applies(self, ctx: FileContext) -> bool:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return False
        # The telemetry package itself implements the lifecycle.
        return not (ctx.module == "repro.telemetry"
                    or ctx.module.startswith("repro.telemetry."))

    def _is_discarded_statement(self, ctx: FileContext, node: ast.Call) -> bool:
        parent = next(ctx.ancestors(node), None)
        return isinstance(parent, ast.Expr)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        metric_imports, metric_modules = _telemetry_metric_imports(ctx.walk())
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "start_span":
                yield self.finding(
                    ctx, node,
                    "low-level start_span() outside the telemetry package; "
                    "use `with tracer.span(...)` so the span always closes",
                    span=_expr_span(node),
                )
                continue
            if isinstance(func, ast.Attribute) and func.attr in _SPAN_FACTORIES \
                    and self._is_discarded_statement(ctx, node):
                yield self.finding(
                    ctx, node,
                    f"{func.attr}() result discarded; the span context manager "
                    "must be entered (`with ...:`) or it never opens/closes",
                    span=_expr_span(node),
                )
                continue
            if isinstance(func, ast.Name) and func.id == "maybe_span" \
                    and self._is_discarded_statement(ctx, node):
                yield self.finding(
                    ctx, node,
                    "maybe_span() result discarded; enter it with `with ...:`",
                    span=_expr_span(node),
                )
                continue
            name = dotted_name(func)
            if isinstance(func, ast.Name) and func.id in metric_imports:
                yield self.finding(
                    ctx, node,
                    f"direct {metric_imports[func.id]}() construction bypasses "
                    "the MetricsRegistry; use registry.counter()/gauge()/"
                    "histogram() so exporters see the metric",
                    span=_expr_span(node),
                )
            elif name and "." in name:
                head, leaf = name.rsplit(".", 1)
                if leaf in TELEMETRY_METRIC_CLASSES \
                        and (head in metric_modules
                             or head.endswith("telemetry.metrics")
                             or head.endswith("telemetry")):
                    yield self.finding(
                        ctx, node,
                        f"direct {leaf}() construction bypasses the "
                        "MetricsRegistry; use registry.counter()/gauge()/"
                        "histogram() so exporters see the metric",
                        span=_expr_span(node),
                    )


# ---------------------------------------------------------------------------
# BARE-RETRY


def _scan_handler(nodes) -> tuple:
    """(has_continue, has_raise/return) scanning a handler body.

    Does not descend into nested loops or function definitions — a
    ``continue`` there belongs to the inner loop, and a ``raise`` there
    does not bound the outer retry.
    """
    has_continue = False
    has_escape = False
    for node in nodes:
        if isinstance(node, ast.Continue):
            has_continue = True
        elif isinstance(node, (ast.Raise, ast.Return, ast.Break)):
            has_escape = True
        elif isinstance(node, (ast.While, ast.For, ast.FunctionDef,
                               ast.AsyncFunctionDef)):
            continue
        else:
            sub_continue, sub_escape = _scan_handler(ast.iter_child_nodes(node))
            has_continue = has_continue or sub_continue
            has_escape = has_escape or sub_escape
    return has_continue, has_escape


def _while_true_tries(loop: ast.While):
    """Try statements directly inside ``loop`` (not in a nested loop)."""
    stack = list(loop.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Try):
            yield node
            continue
        if isinstance(node, (ast.While, ast.For, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class BareRetryRule(Rule):
    name = "BARE-RETRY"
    severity = "error"
    description = ("unbounded `while True` retry loop: an except handler "
                   "swallows the error and continues forever.  A faulted "
                   "operation must retry under a bounded RecoveryPolicy "
                   "(repro.resilience.with_retries) so injected faults "
                   "terminate in RecoveryExhausted instead of spinning")

    def applies(self, ctx: FileContext) -> bool:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return False
        # The resilience package implements the bounded retry engine.
        return not (ctx.module == "repro.resilience"
                    or ctx.module.startswith("repro.resilience."))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.While):
                continue
            test = node.test
            if not (isinstance(test, ast.Constant) and bool(test.value)):
                continue
            for try_stmt in _while_true_tries(node):
                for handler in try_stmt.handlers:
                    has_continue, has_escape = _scan_handler(handler.body)
                    if has_continue and not has_escape:
                        kinds = dotted_name(handler.type) if handler.type \
                            else "Exception"
                        yield self.finding(
                            ctx, handler,
                            f"`while True` retry swallows {kinds or 'errors'} "
                            "and continues unboundedly; bound the attempts "
                            "(for attempt in range(...)) or route through "
                            "repro.resilience.with_retries",
                        )
