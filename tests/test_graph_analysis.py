"""Tests for graph analysis statistics."""

import numpy as np
import pytest

from repro.graph.analysis import (
    assortativity_by_labels,
    clustering_coefficient,
    degree_stats,
    label_homophily_baseline,
)
from repro.graph.formats import AdjacencyCOO
from repro.graph.generators import dcsbm_graph, erdos_renyi_graph, ring_graph


class TestDegreeStats:
    def test_ring_is_uniform(self):
        stats = degree_stats(ring_graph(50).to_csr())
        assert stats.mean == pytest.approx(2.0)
        assert stats.maximum == 2
        assert stats.gini == pytest.approx(0.0, abs=1e-9)

    def test_star_is_maximally_concentrated(self):
        n = 100
        src = np.concatenate([np.zeros(n - 1, dtype=np.int64),
                              np.arange(1, n)])
        dst = np.concatenate([np.arange(1, n),
                              np.zeros(n - 1, dtype=np.int64)])
        stats = degree_stats(AdjacencyCOO(n, src, dst).to_csr())
        assert stats.maximum == n - 1
        assert stats.gini > 0.4
        assert stats.tail_ratio == pytest.approx(0.5, abs=0.01)

    def test_dcsbm_heavier_tailed_than_er(self):
        dcsbm, _ = dcsbm_graph(1000, 8000, seed=0)
        er = erdos_renyi_graph(1000, 8000, seed=0)
        assert degree_stats(dcsbm.to_csr()).gini > degree_stats(er.to_csr()).gini
        assert (degree_stats(dcsbm.to_csr()).tail_ratio
                > degree_stats(er.to_csr()).tail_ratio)

    def test_empty_graph(self):
        empty = AdjacencyCOO(0, np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64)).to_csr()
        stats = degree_stats(empty)
        assert stats.mean == 0.0


class TestClustering:
    def test_community_graph_clusters_more_than_random(self):
        dcsbm, _ = dcsbm_graph(600, 6000, num_communities=6,
                               intra_prob=0.9, seed=0)
        er = erdos_renyi_graph(600, 6000, seed=0)
        assert (clustering_coefficient(dcsbm.to_csr(), seed=1)
                > clustering_coefficient(er.to_csr(), seed=1))

    def test_triangle_is_fully_clustered(self):
        coo = AdjacencyCOO(3, np.array([0, 1, 2, 1, 2, 0]),
                           np.array([1, 2, 0, 0, 1, 2]))
        assert clustering_coefficient(coo.to_csr(), seed=0) == pytest.approx(1.0)

    def test_ring_has_no_triangles(self):
        assert clustering_coefficient(ring_graph(20).to_csr(), seed=0) == 0.0


class TestHomophily:
    def test_community_labels_are_homophilous(self):
        coo, comm = dcsbm_graph(600, 6000, num_communities=6,
                                intra_prob=0.9, seed=0)
        observed = assortativity_by_labels(coo.to_csr(), comm)
        baseline = label_homophily_baseline(comm)
        assert observed > 2 * baseline

    def test_baseline_formula(self):
        labels = np.array([0, 0, 1, 1])
        assert label_homophily_baseline(labels) == pytest.approx(0.5)

    def test_requires_single_labels(self):
        coo = ring_graph(4).to_csr()
        with pytest.raises(ValueError):
            assortativity_by_labels(coo, np.zeros((4, 2)))


class TestDatasetFidelity:
    """The synthetic Table 1 datasets keep their real counterparts' shape."""

    def test_all_datasets_heavy_tailed(self):
        from repro.datasets import get_dataset, list_datasets
        for spec in list_datasets():
            graph = get_dataset(spec.name, scale=0.5)
            stats = degree_stats(graph.adj)
            assert stats.gini > 0.2, spec.name  # far from uniform
            assert stats.tail_ratio > 0.03, spec.name

    def test_reddit_densest_actual(self):
        from repro.datasets import get_dataset
        reddit = get_dataset("reddit", scale=0.5)
        ppi = get_dataset("ppi", scale=0.5)
        assert (reddit.num_edges / reddit.num_nodes
                > ppi.num_edges / ppi.num_nodes)

    def test_labels_homophilous_enough_to_learn(self):
        from repro.datasets import get_dataset
        for name in ("flickr", "ogbn-arxiv"):
            graph = get_dataset(name, scale=0.5)
            observed = assortativity_by_labels(graph.adj, graph.labels)
            baseline = label_homophily_baseline(graph.labels)
            assert observed > 1.5 * baseline, name
