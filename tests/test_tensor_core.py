"""Tests for Tensor arithmetic, shapes, and autograd plumbing."""

import numpy as np
import pytest

from repro.errors import AutogradError, PlacementError
from repro.tensor.tensor import Tensor, cat, no_grad, ones, stack, zeros


def t(data, **kw):
    return Tensor(np.asarray(data, dtype=np.float32), **kw)


class TestConstruction:
    def test_float_arrays_become_float32(self):
        assert Tensor(np.ones(3, dtype=np.float64)).dtype == np.float32

    def test_int_arrays_become_int64(self):
        assert Tensor(np.array([1, 2, 3], dtype=np.int32)).dtype == np.int64

    def test_shape_and_numel(self):
        x = zeros((3, 4))
        assert x.shape == (3, 4)
        assert x.numel() == 12
        assert len(x) == 3

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            t([1.0, 2.0]).item()
        assert t([2.5]).item() == pytest.approx(2.5)

    def test_detach_shares_data_drops_grad(self):
        x = t([[1.0, 2.0]], requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data


class TestArithmetic:
    def test_add_broadcasts(self):
        x = t(np.ones((2, 3)))
        b = t(np.arange(3))
        assert np.allclose((x + b).data, 1.0 + np.arange(3))

    def test_scalar_coercion(self):
        x = t([1.0, 2.0])
        assert np.allclose((x + 1).data, [2.0, 3.0])
        assert np.allclose((2 * x).data, [2.0, 4.0])
        assert np.allclose((1 - x).data, [0.0, -1.0])
        assert np.allclose((x / 2).data, [0.5, 1.0])
        assert np.allclose((2 / x).data, [2.0, 1.0])

    def test_pow(self):
        x = t([2.0, 3.0])
        assert np.allclose((x ** 2).data, [4.0, 9.0])

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            t([1.0]) ** t([2.0])

    def test_matmul(self):
        a = t(np.arange(6).reshape(2, 3))
        b = t(np.arange(12).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_neg(self):
        assert np.allclose((-t([1.0, -2.0])).data, [-1.0, 2.0])


class TestShapes:
    def test_reshape_and_transpose(self):
        x = t(np.arange(6).astype(np.float32))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).T.shape == (2, 3)

    def test_cat_along_axes(self):
        a, b = t(np.ones((2, 3))), t(np.zeros((1, 3)))
        assert cat([a, b], axis=0).shape == (3, 3)
        c = cat([t(np.ones((2, 1))), t(np.zeros((2, 2)))], axis=1)
        assert c.shape == (2, 3)

    def test_cat_empty_rejected(self):
        with pytest.raises(ValueError):
            cat([])

    def test_stack(self):
        a, b = t(np.ones(3)), t(np.zeros(3))
        assert stack([a, b]).shape == (2, 3)

    def test_index_select(self):
        x = t(np.arange(12).reshape(4, 3))
        out = x.index_select(np.array([2, 0, 2]))
        assert np.allclose(out.data, x.data[[2, 0, 2]])

    def test_getitem_with_int_array_gathers(self):
        x = t(np.arange(12).reshape(4, 3))
        out = x[np.array([1, 3])]
        assert out.shape == (2, 3)


class TestReductions:
    def test_sum_axes(self):
        x = t(np.arange(6).reshape(2, 3))
        assert x.sum().item() == pytest.approx(15.0)
        assert np.allclose(x.sum(axis=0).data, [3, 5, 7])
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        x = t(np.arange(6).reshape(2, 3))
        assert x.mean().item() == pytest.approx(2.5)
        assert np.allclose(x.mean(axis=0).data, [1.5, 2.5, 3.5])

    def test_max(self):
        x = t([[1.0, 5.0], [3.0, 2.0]])
        assert x.max().item() == pytest.approx(5.0)
        assert np.allclose(x.max(axis=0).data, [3.0, 5.0])


class TestAutogradPlumbing:
    def test_backward_requires_grad(self):
        with pytest.raises(AutogradError):
            t([1.0]).backward()

    def test_backward_requires_scalar_without_grad_arg(self):
        x = t([1.0, 2.0], requires_grad=True)
        with pytest.raises(AutogradError):
            (x * 2).backward()

    def test_grad_accumulates_across_uses(self):
        x = t([2.0], requires_grad=True)
        y = x * 3 + x * 4  # dy/dx = 7
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_zero_grad(self):
        x = t([2.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_blocks_graph(self):
        x = t([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_backward_frees_graph(self):
        x = t([1.0], requires_grad=True)
        y = x * 2
        z = y * 3
        z.backward()
        assert y._prev == ()

    def test_deep_chain_no_recursion_error(self):
        x = t([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y * 1.0001
        y.backward()
        assert x.grad is not None

    def test_diamond_graph_gradient(self):
        x = t([3.0], requires_grad=True)
        a = x * 2
        b = x * 5
        y = a + b
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)


class TestPlacement:
    def test_mixed_devices_rejected(self, machine):
        a = Tensor(np.ones(4, dtype=np.float32), device=machine.cpu)
        b = Tensor(np.ones(4, dtype=np.float32), device=machine.gpu)
        with pytest.raises(PlacementError):
            a + b

    def test_host_tensor_adopts_device(self, machine):
        a = Tensor(np.ones(4, dtype=np.float32), device=machine.cpu)
        b = Tensor(np.ones(4, dtype=np.float32))
        assert (a + b).device is machine.cpu

    def test_work_scale_propagates_max(self, machine):
        a = Tensor(np.ones(4, dtype=np.float32), device=machine.cpu, work_scale=8.0)
        b = Tensor(np.ones(4, dtype=np.float32), device=machine.cpu, work_scale=2.0)
        assert (a * b).work_scale == 8.0

    def test_device_tensor_registers_logical_memory(self, machine):
        x = Tensor(np.ones((10, 10), dtype=np.float32), device=machine.cpu,
                   work_scale=3.0)
        assert machine.cpu.memory.in_use >= x.nbytes * 3

    def test_ops_on_device_advance_clock(self, machine):
        a = Tensor(np.ones((100, 100), dtype=np.float32), device=machine.cpu)
        before = machine.clock.now
        _ = a @ a
        assert machine.clock.now > before

    def test_host_ops_do_not_touch_clock(self, machine):
        a = Tensor(np.ones((100, 100), dtype=np.float32))
        _ = a @ a
        assert machine.clock.now == 0.0
