"""The core autograd :class:`Tensor`.

Design follows the micrograd pattern: each op builds a closure that knows
how to push gradients to its inputs; ``backward()`` runs them in reverse
topological order.  Each op additionally

* charges simulated time to the tensor's device (roofline cost x the
  active framework profile), and
* registers the result's *logical* bytes in the device memory ledger
  (actual bytes x ``work_scale``), which is how simulated OOM happens.
"""

from __future__ import annotations

import contextlib
import weakref
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AutogradError, PlacementError
from repro.tensor.context import charge

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True

FLOAT_DTYPE = np.float32


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the block (inference / updates)."""
    global _grad_enabled
    prev = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = prev


def grad_enabled() -> bool:
    return _grad_enabled


def _noop_backward() -> None:
    return None


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _merge_placement(*tensors: "Tensor"):
    """Resolve (device, work_scale) for an op over ``tensors``.

    Tensors without a device (plain test math) are placement-agnostic.
    Mixing two *different* devices is the classic "expected all tensors on
    the same device" error both real frameworks raise.
    """
    device = None
    scale = 1.0
    for t in tensors:
        scale = max(scale, t.work_scale)
        if t.device is None:
            continue
        if device is None:
            device = t.device
        elif device is not t.device:
            raise PlacementError(
                f"tensors on different devices: {device.name} vs {t.device.name}"
            )
    return device, scale


class Tensor:
    """A numpy array with a device, logical work scale, and autograd."""

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "device",
        "work_scale",
        "_backward",
        "_prev",
        "_op",
        "_alloc",
        "__weakref__",
    )

    def __init__(
        self,
        data: ArrayLike,
        device=None,
        requires_grad: bool = False,
        work_scale: float = 1.0,
        _prev: Tuple["Tensor", ...] = (),
        _op: str = "",
        _owns_memory: bool = True,
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype.kind == "f":
            arr = arr.astype(FLOAT_DTYPE, copy=False)
        elif arr.dtype.kind in "iub":
            arr = arr.astype(np.int64, copy=False)
        self.data = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.device = device
        self.work_scale = float(work_scale)
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = _prev if _grad_enabled else ()
        self._op = _op
        self._alloc = None
        if device is not None and _owns_memory and arr.nbytes > 0:
            logical = int(arr.nbytes * self.work_scale)
            self._alloc = device.memory.alloc(logical, label=_op or "tensor")
            weakref.finalize(self, device.memory.release, self._alloc)

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def logical_nbytes(self) -> int:
        return int(self.data.nbytes * self.work_scale)

    def numel(self) -> int:
        return self.data.size

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(
            self.data,
            device=self.device,
            requires_grad=False,
            work_scale=self.work_scale,
            _owns_memory=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dev = self.device.name if self.device is not None else "host"
        return f"Tensor(shape={self.shape}, dtype={self.dtype}, device={dev})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        op: str,
        owns_memory: bool = True,
    ) -> "Tensor":
        device, scale = _merge_placement(*parents)
        out = Tensor(
            data,
            device=device,
            requires_grad=any(p.requires_grad for p in parents),
            work_scale=scale,
            _prev=tuple(p for p in parents if p.requires_grad),
            _op=op,
            _owns_memory=owns_memory,
        )
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(FLOAT_DTYPE, copy=True)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=FLOAT_DTYPE), device=None, _owns_memory=False)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = Tensor._result(self.data + other.data, (self, other), "add")
        n = out.data.size
        charge(out.device, "add", "elementwise", flops=n, bytes_moved=12 * n, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))
                charge(out.device, "add.bwd", "elementwise", flops=n, bytes_moved=12 * n,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = Tensor._result(self.data * other.data, (self, other), "mul")
        n = out.data.size
        charge(out.device, "mul", "elementwise", flops=n, bytes_moved=12 * n, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))
                charge(out.device, "mul.bwd", "elementwise", flops=2 * n, bytes_moved=16 * n,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = Tensor._result(self.data / other.data, (self, other), "div")
        n = out.data.size
        charge(out.device, "div", "elementwise", flops=n, bytes_moved=12 * n, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    grad_other = -out.grad * self.data / (other.data * other.data)
                    other._accumulate(_unbroadcast(grad_other, other.shape))
                charge(out.device, "div.bwd", "elementwise", flops=3 * n, bytes_moved=16 * n,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar powers are supported")
        out = Tensor._result(self.data ** exponent, (self,), "pow")
        n = out.data.size
        charge(out.device, "pow", "elementwise", flops=2 * n, bytes_moved=8 * n, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))
                charge(out.device, "pow.bwd", "elementwise", flops=3 * n, bytes_moved=12 * n,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out = Tensor._result(self.data @ other.data, (self, other), "matmul")
        m = int(np.prod(self.shape[:-1]))
        k = self.shape[-1]
        n = other.shape[-1] if other.ndim > 1 else 1
        flops = 2.0 * m * k * n
        moved = 4.0 * (m * k + k * n + m * n)
        charge(out.device, "matmul", "gemm", flops=flops, bytes_moved=moved, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    grad_self = out.grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(grad_self, self.shape))
                if other.requires_grad:
                    grad_other = np.swapaxes(self.data, -1, -2) @ out.grad
                    other._accumulate(_unbroadcast(grad_other, other.shape))
                charge(out.device, "matmul.bwd", "gemm", flops=2 * flops, bytes_moved=2 * moved,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._result(self.data.reshape(shape), (self,), "reshape", owns_memory=False)

        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad.reshape(self.shape))
            out._backward = _backward
        return out

    def transpose(self, axis0: int = -2, axis1: int = -1) -> "Tensor":
        out = Tensor._result(
            np.swapaxes(self.data, axis0, axis1), (self,), "transpose", owns_memory=False
        )

        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(np.swapaxes(out.grad, axis0, axis1))
            out._backward = _backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def index_select(self, index: np.ndarray) -> "Tensor":
        """Gather rows: ``out[i] = self[index[i]]`` (PyG-style gather)."""
        index = np.asarray(index)
        out = Tensor._result(self.data[index], (self,), "index_select")
        moved = out.data.nbytes * 2
        charge(out.device, "index_select", "index", bytes_moved=moved, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                grad = np.zeros_like(self.data, dtype=FLOAT_DTYPE)
                # Arbitrary caller-supplied index: no sorted-segment
                # structure to reduceat over.
                np.add.at(grad, index, out.grad)  # repro-lint: disable=ADD-AT generic unsorted index
                self._accumulate(grad)
                charge(out.device, "index_select.bwd", "index", bytes_moved=2 * moved,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    def __getitem__(self, key) -> "Tensor":
        if isinstance(key, np.ndarray) and key.dtype.kind in "iu":
            return self.index_select(key)
        out = Tensor._result(self.data[key], (self,), "slice", owns_memory=False)

        if out.requires_grad:
            def _backward() -> None:
                grad = np.zeros_like(self.data, dtype=FLOAT_DTYPE)
                grad[key] = out.grad
                self._accumulate(grad)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out = Tensor._result(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")
        n = self.data.size
        charge(out.device, "sum", "reduce", flops=n, bytes_moved=4 * n, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(np.broadcast_to(grad, self.shape).astype(FLOAT_DTYPE))
                charge(out.device, "sum.bwd", "elementwise", bytes_moved=4 * n,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor._result(out_data, (self,), "max")
        n = self.data.size
        charge(out.device, "max", "reduce", flops=n, bytes_moved=4 * n, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                expanded = out.data if keepdims or axis is None else np.expand_dims(out.data, axis)
                grad_out = out.grad if keepdims or axis is None else np.expand_dims(out.grad, axis)
                mask = (self.data == expanded).astype(FLOAT_DTYPE)
                mask /= np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
                self._accumulate(mask * grad_out)
                charge(out.device, "max.bwd", "elementwise", flops=2 * n, bytes_moved=8 * n,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # pointwise nonlinearities used pervasively by GNN layers
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = Tensor._result(np.exp(self.data), (self,), "exp")
        n = out.data.size
        charge(out.device, "exp", "elementwise", flops=4 * n, bytes_moved=8 * n, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * out.data)
                charge(out.device, "exp.bwd", "elementwise", flops=n, bytes_moved=8 * n,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._result(np.log(self.data), (self,), "log")
        n = out.data.size
        charge(out.device, "log", "elementwise", flops=4 * n, bytes_moved=8 * n, scale=out.work_scale)

        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad / self.data)
                charge(out.device, "log.bwd", "elementwise", flops=n, bytes_moved=8 * n,
                       scale=out.work_scale)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor."""
        if not self.requires_grad:
            raise AutogradError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise AutogradError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data, dtype=FLOAT_DTYPE)
        topo: List[Tensor] = []
        visited = set()
        # Iterative DFS to avoid recursion limits on deep graphs.
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = np.asarray(grad, dtype=FLOAT_DTYPE).reshape(self.shape).copy()
        for node in reversed(topo):
            if node.grad is not None:
                node._backward()
        # Free the graph: backward closures capture their output tensor,
        # forming reference cycles that would keep device memory pinned
        # until a full GC pass.  Breaking the links here lets refcounting
        # release intermediate tensors immediately (torch's
        # retain_graph=False behaviour).
        for node in topo:
            node._backward = _noop_backward
            node._prev = ()

    def zero_grad(self) -> None:
        self.grad = None


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cat() of empty sequence")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor._result(data, tuple(tensors), "cat")
    charge(out.device, "cat", "index", bytes_moved=2 * data.nbytes, scale=out.work_scale)

    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward() -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    idx = [slice(None)] * data.ndim
                    idx[axis] = slice(lo, hi)
                    t._accumulate(out.grad[tuple(idx)])
        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    expanded = [t.reshape(*t.shape[:axis], 1, *t.shape[axis:]) for t in tensors]
    return cat(expanded, axis=axis)


def zeros(shape, device=None, requires_grad: bool = False, work_scale: float = 1.0) -> Tensor:
    return Tensor(np.zeros(shape, dtype=FLOAT_DTYPE), device=device,
                  requires_grad=requires_grad, work_scale=work_scale)


def ones(shape, device=None, requires_grad: bool = False, work_scale: float = 1.0) -> Tensor:
    return Tensor(np.ones(shape, dtype=FLOAT_DTYPE), device=device,
                  requires_grad=requires_grad, work_scale=work_scale)
