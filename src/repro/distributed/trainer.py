"""Synchronous data-parallel GraphSAGE training over k GPUs.

Per global step:

1. the host CPU samples one batch shard per GPU (the samplers stay on the
   CPU, exactly as in the paper — this stage does NOT parallelize);
2. each shard's features/graph cross PCIe to its GPU (the link is shared,
   so transfers serialize);
3. replicas compute forward/backward concurrently — rank 0's shard is
   executed physically and the other ranks are credited the same busy
   window (shards are symmetric by construction);
4. gradients ring-all-reduce across the GPUs, then every replica steps.

Because replica busy time is credited retroactively, distributed energy
is integrated exactly from busy intervals
(:meth:`~repro.distributed.machine.MultiGpuMachine.total_gpu_energy`)
instead of the sampled monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.distributed.collective import ring_allreduce
from repro.distributed.machine import MultiGpuMachine
from repro.errors import BenchmarkError
from repro.frameworks.base import Framework, FrameworkGraph
from repro.kernels.transfer import adj_to_device, to_device
from repro.models.base import make_loss
from repro.profiling.profiler import PhaseProfiler
from repro.resilience import runtime as resilience
from repro.telemetry.runtime import maybe_span
from repro.tensor.module import Module
from repro.tensor.optim import Adam


@dataclass
class ScalingResult:
    """Outcome of one data-parallel run."""

    num_gpus: int
    epochs: int
    steps_per_epoch: int
    phases: Dict[str, float]
    losses: List[float] = field(default_factory=list)
    gpu_energy: float = 0.0
    cpu_energy: float = 0.0

    @property
    def total_time(self) -> float:
        return sum(self.phases.values())

    @property
    def total_energy(self) -> float:
        return self.gpu_energy + self.cpu_energy


class DataParallelTrainer:
    """k-GPU synchronous data-parallel driver (GraphSAGE-style blocks)."""

    def __init__(
        self,
        framework: Framework,
        fgraph: FrameworkGraph,
        sampler,
        model: Module,
        epochs: int = 2,
        representative_steps: int = 2,
        lr: float = 1e-3,
        profiler: PhaseProfiler = None,
    ) -> None:
        machine = fgraph.machine
        if not isinstance(machine, MultiGpuMachine):
            raise BenchmarkError("DataParallelTrainer needs a MultiGpuMachine")
        if epochs < 1 or representative_steps < 1:
            raise BenchmarkError("epochs and representative_steps must be >= 1")
        self.framework = framework
        self.fgraph = fgraph
        self.sampler = sampler
        self.model = model
        self.machine: MultiGpuMachine = machine
        self.epochs = epochs
        self.representative_steps = representative_steps
        self.profiler = profiler or PhaseProfiler(machine.clock)
        self.loss_fn = make_loss(fgraph.stats.multilabel)
        self.optimizer = None
        self.lr = lr
        # Ranks still in the ring; the resilience layer excludes dead
        # replicas here and subsequent steps re-shard over the survivors.
        self._active_ranks: List[int] = list(range(machine.num_gpus))

    # ------------------------------------------------------------------
    def _grad_nbytes(self) -> float:
        return float(sum(p.logical_nbytes for p in self.model.parameters()))

    def _replica_names(self) -> List[str]:
        return [self.machine.gpus[rank].name
                for rank in self._active_ranks if rank > 0]

    def _step(self, shards) -> float:
        """One synchronous global step over ``shards`` root sets."""
        machine = self.machine
        gpu0 = machine.gpus[0]
        profiler = self.profiler
        # The "replica" fault site arms once per global step.
        fault = resilience.arm("replica")

        # (1) host-side sampling of every shard — serial on the CPU.
        with profiler.phase("sampling"):
            batches = [self.sampler.sample(roots) for roots in shards]

        # (2) PCIe transfers serialize on the shared link.
        with profiler.phase("data_movement"), self.framework.activate():
            batch0 = batches[0]
            batch0.adjs = [adj_to_device(a, gpu0, machine.pcie, tag="dp-graph")
                           for a in batch0.adjs]
            batch0.x = to_device(batch0.x, gpu0, machine.pcie, tag="dp-features")
            machine.pcie.h2d(batch0.y_logical_nbytes, tag="dp-labels")
            for extra in batches[1:]:
                machine.pcie.h2d(extra.x.logical_nbytes, tag="dp-features")
                for adj in extra.adjs:
                    machine.pcie.h2d(adj.structure_nbytes(), tag="dp-graph")
                machine.pcie.h2d(extra.y_logical_nbytes, tag="dp-labels")

        # (3) replica compute: rank 0 runs physically; ranks 1..k-1 are
        # credited the same busy window (symmetric shards).
        with profiler.phase("training"), self.framework.activate():
            start = machine.clock.now
            self.model.train()
            self.optimizer.zero_grad()
            logits = self.model(batch0.adjs, batch0.x)
            loss = self.loss_fn(logits, batch0.y)
            loss.backward()
            compute = machine.clock.now - start
            if self._replica_names():
                machine.clock.occupy_parallel(
                    {name: compute for name in self._replica_names()},
                    tag="dp-replica-compute", backfill=True,
                )
            if fault is not None:
                self._apply_replica_fault(fault, compute)
            # (4) gradient synchronization + identical updates everywhere.
            ring_allreduce(machine, self._grad_nbytes(), tag="dp-allreduce",
                           gpus=[machine.gpus[r] for r in self._active_ranks])
            self.optimizer.step()
        return loss.item()

    def _apply_replica_fault(self, fault, compute: float) -> None:
        """Recover from a dead or straggling replica before the all-reduce.

        ``straggler``: the victim's step takes ``slow_factor`` times
        longer and the synchronous ring waits for it.  ``dead``: the
        victim is excluded from the ring, and rank 0 re-executes its
        shard (one extra compute window) so no data is silently dropped;
        later steps re-shard over the surviving ranks.
        """
        injector = resilience.active()
        machine = self.machine
        candidates = [r for r in self._active_ranks if r > 0]
        victim = fault.rank if fault.rank is not None else \
            (candidates[-1] if candidates else None)
        if victim not in candidates:
            # Nothing excludable (single-GPU ring, or the rank already
            # died): the fault cannot fire, so neither counter moves.
            return
        name = machine.gpus[victim].name
        if fault.kind == "straggler":
            injector.record_injected("replica", "straggler")
            extra = compute * (fault.slow_factor - 1.0)
            with maybe_span("recover.straggler", category="resilience",
                            rank=victim, extra_seconds=extra):
                if extra > 0:
                    machine.clock.occupy(name, extra, tag="dp-straggler")
            injector.record_recovered("replica", action="wait")
        else:  # dead
            injector.record_injected("replica", "dead")
            with maybe_span("recover.exclude", category="resilience",
                            rank=victim):
                self._active_ranks.remove(victim)
                machine.clock.occupy(machine.gpus[0].name, compute,
                                     tag="dp-reshard")
            injector.record_recovered("replica", action="exclude")

    # ------------------------------------------------------------------
    def run(self) -> ScalingResult:
        machine = self.machine
        k = machine.num_gpus
        with self.profiler.phase("data_movement"), self.framework.activate():
            self.model.to(machine.gpus[0], link=machine.pcie)
        self.optimizer = Adam(self.model.parameters(), lr=self.lr)

        batches_per_epoch = self.sampler.num_batches()
        steps_per_epoch = max(1, int(np.ceil(batches_per_epoch / k)))
        reps = min(self.representative_steps, steps_per_epoch)
        shard_size = self.sampler.algorithm.actual_batch_size
        train = self.fgraph.graph.train_nodes()
        rng = np.random.default_rng(0)
        losses: List[float] = []

        for _ in range(self.epochs):
            order = rng.permutation(train)
            usage_before = self._usage_snapshot()
            phases_before = self.profiler.snapshot()
            wall_before = machine.clock.now
            executed = 0
            for step in range(reps):
                shards = []
                alive = len(self._active_ranks)
                for slot in range(alive):
                    lo = (step * alive + slot) * shard_size
                    roots = order[lo:lo + shard_size]
                    if roots.size == 0:
                        roots = order[:shard_size]
                    shards.append(roots)
                losses.append(self._step(shards))
                executed += 1
            remaining = steps_per_epoch - executed
            if remaining > 0 and executed > 0:
                self._extrapolate(usage_before, phases_before, wall_before,
                                  executed, remaining)

        start = 0.0
        end = machine.clock.now
        return ScalingResult(
            num_gpus=k,
            epochs=self.epochs,
            steps_per_epoch=steps_per_epoch,
            phases=self.profiler.snapshot(),
            losses=losses,
            gpu_energy=machine.total_gpu_energy(start, end),
            cpu_energy=machine.energy("cpu", start, end),
        )

    # ------------------------------------------------------------------
    def _usage_snapshot(self) -> Dict[str, float]:
        snap = {"cpu": self.machine.cpu.counters.busy_seconds,
                "pcie": self.machine.pcie.counters.seconds}
        for gpu in self.machine.gpus:
            snap[gpu.name] = self.machine.clock.busy_time(gpu.name)
        return snap

    def _extrapolate(self, busy_before: Dict[str, float],
                     phases_before: Dict[str, float], wall_before: float,
                     executed: int, remaining: int) -> None:
        """Charge the unexecuted steps of the epoch at measured rates.

        Serial resources (CPU, PCIe, rank-0 GPU) are occupied for their
        scaled busy deltas; replica GPUs are backfilled in parallel; any
        leftover measured wall time advances as idle.  Phase totals scale
        by the same factor.
        """
        machine = self.machine
        clock = machine.clock
        scale = remaining / executed
        wall_epoch = clock.now - wall_before
        busy_after = self._usage_snapshot()

        serial_names = {"cpu": machine.cpu.name, "pcie": "pcie",
                        machine.gpus[0].name: machine.gpus[0].name}
        replica_names = set(self._replica_names())
        serial_total = 0.0
        replica_deltas: Dict[str, float] = {}
        for key, after_value in busy_after.items():
            delta = (after_value - busy_before.get(key, 0.0)) * scale
            if delta <= 0:
                continue
            if key in replica_names:
                replica_deltas[key] = delta
            else:
                clock.occupy(serial_names.get(key, key), delta,
                             tag="dp-extrapolate")
                serial_total += delta
        if replica_deltas:
            # Replicas ran concurrently with the serial segment just
            # charged; credit them inside that window.
            clock.occupy_parallel(replica_deltas, tag="dp-extrapolate",
                                  backfill=True)
        idle = wall_epoch * scale - serial_total
        if idle > 0:
            clock.advance(idle)
        for phase in ("sampling", "data_movement", "training"):
            delta = (self.profiler.seconds(phase)
                     - phases_before.get(phase, 0.0))
            if delta > 0:
                self.profiler.add(phase, delta * scale)