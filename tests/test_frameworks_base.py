"""Tests for framework loading, sampler wrappers, and batch assembly."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed


@pytest.fixture(params=["dglite", "pyglite"])
def framework(request):
    return get_framework(request.param)


class TestGetFramework:
    def test_aliases(self):
        assert get_framework("dgl").name == "dglite"
        assert get_framework("PyG").name == "pyglite"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_framework("jraph")


class TestLoad:
    def test_load_produces_framework_graph(self, framework, machine):
        fgraph = framework.load("ppi", machine, scale=0.3)
        assert fgraph.num_nodes == fgraph.graph.num_nodes
        assert fgraph.features.device is machine.cpu
        assert fgraph.adj.device is machine.cpu

    def test_load_charges_storage_and_build(self, framework, machine):
        framework.load("ppi", machine, scale=0.3)
        assert machine.clock.busy_time("storage") > 0
        assert machine.cpu.counters.busy_seconds > 0

    def test_pyg_loader_faster_than_dgl(self):
        m1, m2 = paper_testbed(), paper_testbed()
        get_framework("dglite").load("ppi", m1, scale=0.3)
        get_framework("pyglite").load("ppi", m2, scale=0.3)
        assert m2.clock.now < m1.clock.now

    def test_unbundled_dataset_pays_raw_penalty(self):
        """ogbn-products is bundled in neither framework."""
        m1, m2 = paper_testbed(), paper_testbed()
        fw = get_framework("pyglite")
        fw.load("yelp", m1, scale=0.1)  # bundled in PyG
        fw.load("ogbn-products", m2, scale=0.1)  # not bundled
        # products is bigger AND penalized; normalize by logical size
        from repro.datasets import dataset_spec
        yelp, products = dataset_spec("yelp"), dataset_spec("ogbn-products")
        per_edge_1 = m1.cpu.counters.busy_seconds / yelp.logical_num_edges
        per_edge_2 = m2.cpu.counters.busy_seconds / products.logical_num_edges
        assert per_edge_2 > per_edge_1


class TestCscConversion:
    def test_pyg_charges_once(self, machine):
        fw = get_framework("pyglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        before = machine.clock.now
        fw.neighbor_sampler(fgraph, seed=0)
        first = machine.clock.now - before
        assert first > 0
        before = machine.clock.now
        fw.saint_sampler(fgraph, seed=0)
        assert machine.clock.now - before < first  # already converted

    def test_dgl_needs_no_conversion(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        before = machine.clock.now
        fw.neighbor_sampler(fgraph, seed=0)
        assert machine.clock.now - before == pytest.approx(0.0, abs=1e-9)


class TestNeighborBatches:
    def test_batch_assembly(self, framework, machine):
        fgraph = framework.load("ppi", machine, scale=0.3)
        sampler = framework.neighbor_sampler(fgraph, fanouts=(5, 3),
                                             batch_size=64, seed=0)
        batch = next(iter(sampler.epoch()))
        assert batch.kind == "blocks"
        assert len(batch.adjs) == 2
        assert batch.x.shape[0] == batch.adjs[0].num_src
        assert batch.y.shape[0] == batch.adjs[-1].num_dst
        assert batch.x.device is machine.cpu

    def test_sampling_charges_time(self, framework, machine):
        fgraph = framework.load("ppi", machine, scale=0.3)
        sampler = framework.neighbor_sampler(fgraph, seed=0)
        before = machine.clock.now
        sampler.sample(fgraph.graph.train_nodes()[:4])
        assert machine.clock.now > before

    def test_pyg_sampling_slower(self):
        machines = {}
        for name in ("dglite", "pyglite"):
            machine = paper_testbed()
            fw = get_framework(name)
            fgraph = fw.load("ppi", machine, scale=0.3)
            sampler = fw.neighbor_sampler(fgraph, seed=0)
            before = machine.clock.now
            sampler.sample(fgraph.graph.train_nodes()[:4])
            machines[name] = machine.clock.now - before
        assert machines["pyglite"] > machines["dglite"]

    def test_gpu_mode_requires_preload(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        with pytest.raises(SamplerError):
            fw.neighbor_sampler(fgraph, mode="gpu", seed=0)

    def test_gpu_mode_places_batch_on_gpu(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        fgraph.preload_to_gpu()
        sampler = fw.neighbor_sampler(fgraph, mode="gpu", seed=0)
        batch = sampler.sample(fgraph.graph.train_nodes()[:4])
        assert batch.x.device is machine.gpu

    def test_uva_mode_charges_gpu_and_uva_traffic(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        sampler = fw.neighbor_sampler(fgraph, mode="uva", seed=0)
        before_uva = machine.pcie.counters.bytes_uva
        batch = sampler.sample(fgraph.graph.train_nodes()[:4])
        assert machine.pcie.counters.bytes_uva > before_uva
        assert batch.x.device is machine.gpu

    def test_pyg_has_no_gpu_sampler(self, machine):
        fw = get_framework("pyglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        with pytest.raises(SamplerError):
            fw.neighbor_sampler(fgraph, mode="gpu")
        with pytest.raises(SamplerError):
            fw.neighbor_sampler(fgraph, mode="uva")

    def test_unknown_mode_rejected(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        with pytest.raises(SamplerError):
            fw.neighbor_sampler(fgraph, mode="tpu")


class TestSubgraphBatches:
    @pytest.mark.parametrize("kind", ["cluster", "saint"])
    def test_batch_assembly(self, framework, machine, kind):
        fgraph = framework.load("ppi", machine, scale=0.3)
        if kind == "cluster":
            sampler = framework.cluster_sampler(fgraph, seed=0)
        else:
            sampler = framework.saint_sampler(fgraph, seed=0)
        batch = next(iter(sampler.epoch()))
        assert batch.kind == "subgraph"
        assert len(batch.adjs) == 1
        assert batch.adjs[0].num_src == batch.adjs[0].num_dst == batch.x.shape[0]
        assert batch.train_rows is not None

    def test_cluster_partition_charged_once(self, framework, machine):
        fgraph = framework.load("ppi", machine, scale=0.3)
        sampler = framework.cluster_sampler(fgraph, seed=0)
        before = machine.clock.now
        sampler.ensure_partitioned()
        first = machine.clock.now - before
        assert first > 0
        before = machine.clock.now
        sampler.ensure_partitioned()
        assert machine.clock.now == before


class TestPreload:
    def test_preload_moves_features_and_structure(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        before = machine.pcie.counters.bytes_h2d
        fgraph.preload_to_gpu()
        moved = machine.pcie.counters.bytes_h2d - before
        assert moved >= fgraph.features.logical_nbytes
        assert fgraph.preloaded_gpu
        assert fgraph.features_on(machine.gpu).device is machine.gpu

    def test_preload_requires_gpu(self):
        from repro.errors import DeviceError
        from repro.hardware.machine import cpu_only_testbed
        machine = cpu_only_testbed()
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        with pytest.raises(DeviceError):
            fgraph.preload_to_gpu()

    def test_preloaded_batches_fetch_on_gpu(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        fgraph.preload_to_gpu()
        sampler = fw.neighbor_sampler(fgraph, seed=0)  # CPU sampling
        batch = sampler.sample(fgraph.graph.train_nodes()[:4])
        assert batch.x.device is machine.gpu  # features already resident
