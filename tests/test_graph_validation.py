"""Tests for the graph validators."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.validation import assert_valid_graph, validate_graph


class TestValidGraphs:
    def test_tiny_graph_passes(self, tiny_graph):
        assert validate_graph(tiny_graph) == []

    def test_datasets_pass_with_symmetry(self):
        from repro.datasets import get_dataset
        for name in ("ppi", "flickr"):
            graph = get_dataset(name, scale=0.3)
            assert validate_graph(graph, require_symmetric=True) == []

    def test_assert_valid_is_silent_on_good_graph(self, tiny_graph):
        assert_valid_graph(tiny_graph)


class TestBrokenGraphs:
    def test_nonfinite_features_detected(self, tiny_graph):
        tiny_graph.features[0, 0] = np.nan
        try:
            assert "non-finite feature values" in validate_graph(tiny_graph)
        finally:
            tiny_graph.features[0, 0] = 0.0

    def test_label_out_of_range_detected(self, tiny_graph):
        original = tiny_graph.labels[0]
        tiny_graph.labels[0] = tiny_graph.stats.num_classes + 3
        try:
            assert "label value outside class range" in validate_graph(tiny_graph)
        finally:
            tiny_graph.labels[0] = original

    def test_overlapping_masks_detected(self, tiny_graph):
        idx = int(np.nonzero(tiny_graph.train_mask)[0][0])
        tiny_graph.val_mask[idx] = True
        try:
            assert "split masks overlap" in validate_graph(tiny_graph)
        finally:
            tiny_graph.val_mask[idx] = False

    def test_uncovered_nodes_detected(self, tiny_graph):
        idx = int(np.nonzero(tiny_graph.train_mask)[0][0])
        tiny_graph.train_mask[idx] = False
        try:
            assert "split masks do not cover all nodes" in validate_graph(tiny_graph)
        finally:
            tiny_graph.train_mask[idx] = True

    def test_asymmetry_detected(self, tiny_graph):
        from repro.graph.formats import AdjacencyCOO
        from repro.graph.graph import Graph
        directed = Graph(
            AdjacencyCOO(tiny_graph.num_nodes,
                         np.array([0]), np.array([1])).to_csr(),
            tiny_graph.features,
            tiny_graph.labels,
            tiny_graph.train_mask,
            tiny_graph.val_mask,
            tiny_graph.test_mask,
            tiny_graph.stats,
        )
        assert "edge set is not symmetric" in validate_graph(
            directed, require_symmetric=True)

    def test_assert_raises_with_all_problems(self, tiny_graph):
        tiny_graph.features[0, 0] = np.inf
        idx = int(np.nonzero(tiny_graph.train_mask)[0][0])
        tiny_graph.val_mask[idx] = True
        try:
            with pytest.raises(GraphFormatError) as err:
                assert_valid_graph(tiny_graph)
            assert "non-finite" in str(err.value)
            assert "overlap" in str(err.value)
        finally:
            tiny_graph.features[0, 0] = 0.0
            tiny_graph.val_mask[idx] = False
