"""Offline profile analysis over one run's telemetry artifacts.

The telemetry layer records *what happened* (spans, device busy
intervals, counters); this package answers *why it took that long*:

* :mod:`~repro.profiling.analysis.critical_path` — the chain of device
  intervals that bounds end-to-end virtual time, with per-lane slack.
* :mod:`~repro.profiling.analysis.roofline` — per-kernel placement on
  the device roofline (compute-/memory-/transfer-bound, arithmetic
  intensity, %-of-peak).
* :mod:`~repro.profiling.analysis.flame` — a deterministic folded-stack
  flamegraph of the span tree.
* :mod:`~repro.profiling.analysis.diff` — differential profiling of two
  runs (span-tree alignment, phase/kernel delta attribution).

Everything is a pure function of the artifact bundle on disk, exposed
through ``repro profile analyze DIR`` / ``repro profile diff A B``.
"""

from repro.profiling.analysis.bundle import RunBundle, load_run_bundle
from repro.profiling.analysis.diff import diff_run_dirs
from repro.profiling.analysis.engine import (
    analyze_run_dir,
    format_diff_report,
    format_profile_report,
)
from repro.profiling.analysis.schema import (
    PROFILE_SCHEMA,
    validate_profile_payload,
    write_profile_json,
)

__all__ = [
    "PROFILE_SCHEMA",
    "RunBundle",
    "analyze_run_dir",
    "diff_run_dirs",
    "format_diff_report",
    "format_profile_report",
    "load_run_bundle",
    "validate_profile_payload",
    "write_profile_json",
]
