"""Ablation: DGL's asynchronous pre-fetching (case study, results omitted
in the paper: "performance ... can be further improved, albeit a little
bit, with this feature").  This bench supplies the omitted numbers.
"""

from conftest import DATASETS, EPOCHS, REPRESENTATIVE_BATCHES, emit

from repro.bench import format_series, run_training_experiment


def test_ablation_prefetch(once):
    def run():
        out = {}
        for prefetch in (False, True):
            label = "prefetch" if prefetch else "baseline"
            out[label] = {
                ds: run_training_experiment(
                    "dglite", ds, "graphsage", placement="cpugpu",
                    prefetch=prefetch, epochs=EPOCHS,
                    representative_batches=REPRESENTATIVE_BATCHES,
                )
                for ds in DATASETS
            }
        return out

    grid = once(run)

    speedups = {
        "DGL prefetch speedup": {
            ds: grid["baseline"][ds].total_time / grid["prefetch"][ds].total_time
            for ds in DATASETS
        },
        "movement hidden": {
            ds: 1.0 - (grid["prefetch"][ds].phases.get("data_movement", 0.0)
                       / max(1e-9, grid["baseline"][ds].phases["data_movement"]))
            for ds in DATASETS
        },
    }
    emit("ablation_prefetch",
         format_series("Ablation: DGL asynchronous pre-fetching (GraphSAGE)",
                       speedups, unit="x / fraction", precision=3))

    for ds in DATASETS:
        base = grid["baseline"][ds]
        pref = grid["prefetch"][ds]
        # Never slower; visible movement shrinks.
        assert pref.total_time <= base.total_time * 1.001, ds
        assert (pref.phases.get("data_movement", 0.0)
                <= base.phases["data_movement"]), ds

    # "Albeit a little bit": the gain is modest — under 2.5x everywhere,
    # and somewhere under 10%.
    gains = [grid["baseline"][ds].total_time / grid["prefetch"][ds].total_time
             for ds in DATASETS]
    assert max(gains) < 2.5
    assert min(gains) < 1.10
