"""Plain-text rendering of figure-shaped result tables."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence


def format_series(title: str, series: Mapping[str, Mapping[str, float]],
                  unit: str = "s", precision: int = 4) -> str:
    """Render ``{config: {dataset: value}}`` as a figure-style table.

    This is the data behind one grouped-bar figure: one row per config
    (e.g. DGL vs PyG), one column per dataset.
    """
    columns: list = []
    for row in series.values():
        for key in row:
            if key not in columns:
                columns.append(key)
    label_w = max(10, max((len(k) for k in series), default=10) + 1)
    # Columns must fit the widest *name* too, not just the numbers —
    # "ogbn-products" is 13 chars and would overflow a numeric-only width.
    name_w = max((len(c) for c in columns), default=0)
    col_w = max(12, precision + 8, name_w + 2)
    lines = [title, "=" * len(title)]
    header = f"{'':<{label_w}}" + "".join(f"{c:>{col_w}}" for c in columns)
    lines.append(header)
    for label, row in series.items():
        cells = []
        for column in columns:
            value = row.get(column)
            if value is None:
                cells.append(f"{'-':>{col_w}}")
            elif isinstance(value, str):
                cells.append(f"{value:>{col_w}}")
            else:
                cells.append(f"{value:>{col_w}.{precision}f}")
        lines.append(f"{label:<{label_w}}" + "".join(cells))
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def format_matrix(title: str, rows: Sequence[str], cols: Sequence[str],
                  values: Dict[tuple, object], unit: str = "s",
                  precision: int = 4) -> str:
    """Render a {(row, col): value} dict as a table ('OOM' strings pass through)."""
    series = {row: {col: values.get((row, col)) for col in cols} for row in rows}
    return format_series(title, series, unit=unit, precision=precision)
