"""Repeated-run statistics.

Section 4.2: "We repeated the same experiments multiple times and observed
more or less the same results."  The simulation is deterministic given a
seed, so repetition here means *different seeds* (sampling order, model
init); this module aggregates the spread so benches can assert the
paper's stability claim quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bench.harness import run_training_experiment


@dataclass(frozen=True)
class RepeatedStats:
    """Mean / standard deviation / coefficient of variation for one metric."""

    values: tuple

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (Bessel-corrected, N−1 denominator).

        Benches run 3–5 seed repeats; the population formula (N) would
        understate the spread at that N and make regression-gate noise
        envelopes too tight.  A single value carries no spread information,
        so N=1 reports 0.
        """
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (n - 1))

    @property
    def cov(self) -> float:
        """std / |mean| (0 for a perfectly stable metric)."""
        mu = self.mean
        return self.std / abs(mu) if mu else 0.0


def run_repeated(seeds: Sequence[int], **experiment_kwargs) -> Dict[str, RepeatedStats]:
    """Run one training experiment once per seed; aggregate key metrics."""
    if not seeds:
        raise ValueError("need at least one seed")
    totals: List[float] = []
    sampling: List[float] = []
    energy: List[float] = []
    for seed in seeds:
        result = run_training_experiment(seed=seed, **experiment_kwargs)
        totals.append(result.total_time)
        sampling.append(result.phases.get("sampling", 0.0))
        energy.append(result.total_energy)
    return {
        "total_time": RepeatedStats(tuple(totals)),
        "sampling": RepeatedStats(tuple(sampling)),
        "energy": RepeatedStats(tuple(energy)),
    }
