"""Framework-independent graph sampling algorithms.

Three samplers, matching the paper's Section 4.1 configuration:

* :mod:`~repro.sampling.neighbor` — GraphSAGE's k-hop neighborhood
  sampler (fanouts 25/10, batch 512 roots).
* :mod:`~repro.sampling.cluster` — ClusterGCN's METIS-partition +
  cluster-aggregation sampler (2000 parts, 50 per batch).
* :mod:`~repro.sampling.randomwalk` — GraphSAINT's random-walk sampler
  (3000 roots, walk length 2).

Each algorithm returns both the sampled index structures *and* a
:class:`~repro.sampling.base.SampleWork` record of items processed, which
the framework wrappers convert into charged time using their per-item
costs (DGL: C++/OpenMP rates; PyG: Python rates — Observation 2).

All samplers are vectorized (no per-seed Python loops, no per-element
dict relabeling — see :mod:`repro.sampling.relabel`), so the native-vs-
Python cost difference stays a *modeled* quantity in
:mod:`repro.frameworks.profiles` rather than an accident of our own
implementation overhead.
"""

from repro.sampling.base import SampleWork, BlockSample, SubgraphSample
from repro.sampling.relabel import (
    block_locals,
    gather_neighborhoods,
    relabel,
    unique_with_seeds,
)
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.cluster import ClusterSampler
from repro.sampling.randomwalk import RandomWalkSampler
from repro.sampling.saint_variants import SaintEdgeSampler, SaintNodeSampler
from repro.sampling.layerwise import FastGCNSampler, LadiesSampler

__all__ = [
    "BlockSample",
    "ClusterSampler",
    "FastGCNSampler",
    "LadiesSampler",
    "NeighborSampler",
    "RandomWalkSampler",
    "SaintEdgeSampler",
    "SaintNodeSampler",
    "SampleWork",
    "SubgraphSample",
    "block_locals",
    "gather_neighborhoods",
    "relabel",
    "unique_with_seeds",
]
