"""Composable streaming datapipe over the virtual clock.

DGL-graphbolt-style stages (``ItemSampler -> NeighborSampler ->
FeatureFetcher -> CopyTo``) with bounded prefetch queues: real execution
stays item-sequential (so RNG consumption and numerics are bit-identical
to the serial schedule), while every stage's measured cost is placed on
its own resource lane by :class:`repro.simtime.LaneScheduler` — sampling
and H2D copy overlap GPU compute exactly as the paper's prefetching case
study describes.

``pipeline="off"`` keeps the legacy serial schedule; ``"depth-N"`` allows
N items in flight (depth-1 *is* the serial schedule, expressed on lanes).
"""

from repro.datapipe.config import PipelineConfig, parse_pipeline
from repro.datapipe.pipeline import EpochReport, Stage, run_epoch
from repro.datapipe.staging import StagingPool

__all__ = [
    "EpochReport",
    "PipelineConfig",
    "Stage",
    "StagingPool",
    "parse_pipeline",
    "run_epoch",
]
