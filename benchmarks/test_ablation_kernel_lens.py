"""Ablation: kernel-level time attribution ("magnifying glass" view).

Drills below the four-phase breakdown into per-kernel-family busy time,
verifying the *mechanisms* behind the paper's observations: DGL's training
time concentrates in fused SpMM; PyG's CPU time concentrates in sampling
and (for attention models) scatter; GEMM time is framework-neutral.
"""

from conftest import emit

from repro.bench import format_series, run_training_experiment

RUN = dict(epochs=3, representative_batches=2)
DATASET = "reddit"


def test_ablation_kernel_lens(once):
    def run():
        out = {}
        for fw in ("dglite", "pyglite"):
            out[fw] = run_training_experiment(fw, DATASET, "graphsage",
                                              placement="cpu", **RUN)
        return out

    results = once(run)

    families = sorted(
        {f for r in results.values() for f in r.kernel_families},
    )
    series = {
        fw: {fam: r.kernel_families.get(fam, 0.0) for fam in families}
        for fw, r in results.items()
    }
    # keep the table readable: drop sub-1% families
    totals = {fw: sum(row.values()) for fw, row in series.items()}
    series = {
        fw: {fam: secs for fam, secs in row.items()
             if secs > 0.01 * totals[fw]}
        for fw, row in series.items()
    }
    emit("ablation_kernel_lens",
         format_series(f"Kernel-family busy seconds, GraphSAGE-CPU on {DATASET}",
                       series, unit="s", precision=3))

    dgl = results["dglite"].kernel_families
    pyg = results["pyglite"].kernel_families

    # Sampling is the top recurring family for PyG (Python sampler);
    # "loader" and "csc" are one-time costs, excluded from the ranking.
    recurring = {f: s for f, s in pyg.items() if f not in ("loader", "csc")}
    assert pyg["neighbor"] == max(recurring.values())
    # PyG spends several times DGL's seconds in the same kernels.
    assert pyg["neighbor"] > 4 * dgl["neighbor"]
    assert pyg["spmm"] > 2 * dgl["spmm"]

    # GEMM is vendor BLAS in both frameworks: near-identical seconds.
    assert abs(pyg["matmul"] - dgl["matmul"]) / dgl["matmul"] < 0.2

    # The fused SpMM handles all aggregation: no scatter family appears in
    # either GraphSAGE run (SAGEConv is fused in both frameworks).
    assert "scatter_add" not in dgl
    assert "scatter_add" not in pyg
