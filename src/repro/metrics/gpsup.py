"""GPS-UP metrics (Abdulsalam et al., IGSC 2015) used in Figure 20.

Given a baseline (non-optimized) run and an optimized run:

    Speedup = T_base / T_opt
    Greenup = E_base / E_opt
    Powerup = P_opt / P_base = Speedup / Greenup

Speedup > 1 means the optimization is faster; Greenup > 1 means it uses
less total energy; Powerup > 1 means it draws *more* average power (it may
still be greener if the speedup outweighs the draw).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpsUp:
    """One Speedup/Greenup/Powerup triple."""

    speedup: float
    greenup: float

    @property
    def powerup(self) -> float:
        return self.speedup / self.greenup

    def category(self) -> str:
        """The GPS-UP quadrant label used in the original taxonomy."""
        fast = self.speedup > 1.0
        green = self.greenup > 1.0
        hot = self.powerup > 1.0
        if fast and green:
            return "green-fast" + ("-hot" if hot else "-cool")
        if fast and not green:
            return "red-fast"
        if not fast and green:
            return "green-slow"
        return "red-slow"


def gps_up(base_time: float, base_energy: float,
           opt_time: float, opt_energy: float) -> GpsUp:
    """Compute GPS-UP of an optimized run against its baseline."""
    if min(base_time, base_energy, opt_time, opt_energy) <= 0:
        raise ValueError("times and energies must be positive")
    return GpsUp(speedup=base_time / opt_time, greenup=base_energy / opt_energy)
