"""Tests for the perf-trajectory sweep matrix, artifacts, and gate."""

import json
import os

import pytest

from repro.bench.artifacts import (
    artifact_path,
    atomic_write_text,
    build_sweep_artifact,
    load_sweep_artifact,
    validate_sweep_artifact,
    write_sweep_artifact,
)
from repro.bench.gate import (
    compare_artifacts,
    format_gate_report,
    gate_report_payload,
    inject_slowdown,
    noise_envelope,
)
from repro.bench.repeats import RepeatedStats
from repro.bench.sweep import (
    SweepCell,
    check_cost_invariance,
    run_cell,
    run_sweep,
)
from repro.cli import main
from repro.errors import BenchmarkError

# One tiny cell per driver keeps each sweep in the tens of milliseconds.
CONV_CELL = SweepCell(driver="conv", framework="dglite", kernel="gcn",
                      dataset="ppi", scale=0.3, fastpath=True)
TRAIN_CELL = SweepCell(driver="train", framework="dglite", kernel="graphsage",
                       dataset="ppi", scale=0.3, fastpath=True)
SEEDS = (0, 1)


def tiny_sweep(cell=TRAIN_CELL, seeds=SEEDS):
    return run_sweep("training" if cell.driver == "train" else "kernels",
                     seeds=seeds, cells=[cell])


class TestSweepCells:
    def test_cell_id_encodes_all_axes(self):
        assert CONV_CELL.cell_id == "conv/dglite/gcn/ppi/x0.3/fast"
        ref = SweepCell(**{**CONV_CELL.params, "fastpath": False})
        assert ref.cell_id.endswith("/ref")

    def test_params_round_trip(self):
        assert SweepCell.from_params(TRAIN_CELL.params) == TRAIN_CELL

    def test_from_params_rejects_missing_keys(self):
        with pytest.raises(BenchmarkError):
            SweepCell.from_params({"driver": "conv"})

    def test_cell_deterministic_per_seed(self):
        a = run_cell(TRAIN_CELL, seeds=SEEDS)
        b = run_cell(TRAIN_CELL, seeds=SEEDS)
        for metric in ("virtual_s", "energy_j"):
            assert a["metrics"][metric]["values"] == b["metrics"][metric]["values"]

    def test_seeds_actually_vary_training_time(self):
        cell = run_cell(TRAIN_CELL, seeds=(0, 1, 2))
        values = cell["metrics"]["virtual_s"]["values"]
        assert len(set(values)) > 1
        assert cell["metrics"]["virtual_s"]["std"] > 0

    def test_unknown_driver_rejected(self):
        bad = SweepCell(driver="warp", framework="dglite", kernel="gcn",
                        dataset="ppi", scale=0.3, fastpath=True)
        with pytest.raises(BenchmarkError):
            run_cell(bad, seeds=(0,))

    def test_empty_seeds_rejected(self):
        with pytest.raises(BenchmarkError):
            run_cell(TRAIN_CELL, seeds=())


class TestArtifacts:
    def test_round_trip_validates(self, tmp_path):
        artifact = tiny_sweep()
        path = write_sweep_artifact(tmp_path / "BENCH_training.json", artifact)
        loaded = load_sweep_artifact(path)
        assert validate_sweep_artifact(loaded) == []
        assert loaded == artifact

    def test_artifact_has_provenance_and_seeds(self):
        artifact = tiny_sweep(CONV_CELL)
        assert artifact["schema"] == "repro.bench.sweep/1"
        assert artifact["seeds"] == list(SEEDS)
        assert "numpy" in artifact["provenance"]
        assert artifact["provenance"]["kernel_mode"] == "fast"

    def test_validator_names_problems(self):
        assert validate_sweep_artifact([]) == ["artifact is not a JSON object"]
        problems = validate_sweep_artifact(
            {"schema": "nope", "area": "kernels", "seeds": [0],
             "provenance": {}, "cells": [{"id": "x", "params": {},
                                          "metrics": {}}]})
        assert any("unknown schema" in p for p in problems)
        assert any("params missing" in p for p in problems)
        assert any("metric 'virtual_s' missing" in p for p in problems)

    def test_duplicate_cell_ids_rejected(self):
        cell = run_cell(CONV_CELL, seeds=(0,))
        artifact = build_sweep_artifact("kernels", [cell, cell], seeds=(0,))
        assert any("duplicate cell id" in p
                   for p in validate_sweep_artifact(artifact))

    def test_writer_refuses_invalid_artifact(self, tmp_path):
        with pytest.raises(ValueError):
            write_sweep_artifact(tmp_path / "BENCH_kernels.json",
                                 {"schema": "bad"})

    def test_atomic_write_replaces_and_leaves_no_temps(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_fastpath_pair_costs_identical(self):
        ref = SweepCell(**{**TRAIN_CELL.params, "fastpath": False})
        artifact = run_sweep("training", seeds=(0,), cells=[TRAIN_CELL, ref])
        assert check_cost_invariance(artifact) == []
        fast_cell, ref_cell = artifact["cells"]
        assert (fast_cell["metrics"]["virtual_s"]["values"]
                == ref_cell["metrics"]["virtual_s"]["values"])


class TestGate:
    def test_passes_on_identical_baseline(self):
        artifact = tiny_sweep(CONV_CELL)
        result = compare_artifacts(artifact, artifact)
        assert result.passed
        assert result.regressions == []

    def test_fails_on_injected_slowdown_naming_the_cell(self):
        baseline = tiny_sweep(CONV_CELL)
        doctored = inject_slowdown(baseline, CONV_CELL.cell_id, 2.0)
        result = compare_artifacts(baseline, doctored)
        assert not result.passed
        assert {r.cell_id for r in result.regressions} == {CONV_CELL.cell_id}
        assert {r.metric for r in result.regressions} == {"virtual_s",
                                                          "energy_j"}
        report = format_gate_report([result])
        assert "FAIL" in report and CONV_CELL.cell_id in report

    def test_small_drift_within_envelope_passes(self):
        baseline = tiny_sweep(CONV_CELL)
        nudged = inject_slowdown(baseline, CONV_CELL.cell_id, 1.01)
        assert compare_artifacts(baseline, nudged).passed

    def test_improvements_reported_not_failed(self):
        baseline = tiny_sweep(CONV_CELL)
        faster = inject_slowdown(baseline, CONV_CELL.cell_id, 0.5)
        result = compare_artifacts(baseline, faster)
        assert result.passed
        assert any(CONV_CELL.cell_id in line for line in result.improvements)

    def test_missing_cell_is_a_problem(self):
        baseline = tiny_sweep(CONV_CELL)
        empty = json.loads(json.dumps(baseline))
        empty["cells"] = [dict(empty["cells"][0], id="conv/other")]
        result = compare_artifacts(baseline, empty)
        assert not result.passed
        assert any("missing from current sweep" in p for p in result.problems)

    def test_seed_set_change_is_a_problem(self):
        baseline = tiny_sweep(CONV_CELL)
        other = tiny_sweep(CONV_CELL, seeds=(0,))
        result = compare_artifacts(baseline, other)
        assert any("seed set changed" in p for p in result.problems)

    def test_inject_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            inject_slowdown(tiny_sweep(CONV_CELL), "conv/nope", 2.0)

    def test_noise_envelope_floor_for_zero_std(self):
        assert noise_envelope(10.0, 0.0, rel_slack=0.02) == pytest.approx(10.2)
        assert noise_envelope(10.0, 1.0, k=3.0) == pytest.approx(13.0)

    def test_report_payload_schema(self):
        artifact = tiny_sweep(CONV_CELL)
        payload = gate_report_payload([compare_artifacts(artifact, artifact)])
        assert payload["schema"] == "repro.bench.gate/1"
        assert payload["passed"] is True
        assert payload["areas"][0]["area"] == "kernels"


class TestCli:
    def _baseline(self, tmp_path):
        artifact = tiny_sweep(TRAIN_CELL, seeds=(0,))
        write_sweep_artifact(artifact_path(tmp_path, "training"), artifact)
        return tmp_path

    def test_gate_exit_zero_on_baseline(self, tmp_path, capsys):
        root = self._baseline(tmp_path)
        assert main(["bench", "gate", "--area", "training",
                     "--baseline-dir", str(root)]) == 0
        assert "perf trajectory OK" in capsys.readouterr().out

    def test_gate_exit_nonzero_on_injected_slowdown(self, tmp_path, capsys):
        root = self._baseline(tmp_path)
        assert main(["bench", "gate", "--area", "training",
                     "--baseline-dir", str(root),
                     "--inject-slowdown", f"{TRAIN_CELL.cell_id}=2.0"]) == 1
        out = capsys.readouterr().out
        assert TRAIN_CELL.cell_id in out and "REGRESSED" in out

    def test_gate_json_report_written(self, tmp_path, capsys):
        root = self._baseline(tmp_path)
        out_file = tmp_path / "gate.json"
        assert main(["bench", "gate", "--area", "training",
                     "--baseline-dir", str(root), "--format", "json",
                     "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["passed"] is True
        capsys.readouterr()

    def test_gate_missing_baseline_fails_with_hint(self, tmp_path, capsys):
        assert main(["bench", "gate", "--area", "kernels",
                     "--baseline-dir", str(tmp_path)]) == 1
        assert "repro bench sweep" in capsys.readouterr().out

    def test_gate_unknown_injection_cell_rejected(self, tmp_path, capsys):
        root = self._baseline(tmp_path)
        with pytest.raises(SystemExit):
            main(["bench", "gate", "--area", "training",
                  "--baseline-dir", str(root),
                  "--inject-slowdown", "conv/nope=2.0"])
        capsys.readouterr()

    def test_sweep_rejects_bad_seed_list(self):
        with pytest.raises(SystemExit):
            main(["bench", "sweep", "--seeds", "zero,one"])


class TestRepeatedStatsEdgeCases:
    def test_sample_std_uses_bessel_correction(self):
        assert RepeatedStats((1.0, 2.0, 3.0)).std == pytest.approx(1.0)

    def test_single_value_has_zero_spread(self):
        stats = RepeatedStats((4.2,))
        assert stats.n == 1
        assert stats.std == 0.0
        assert stats.cov == 0.0

    def test_constant_series(self):
        stats = RepeatedStats((5.0, 5.0, 5.0, 5.0))
        assert stats.std == 0.0
        assert stats.cov == 0.0

    def test_negative_mean_cov_stays_positive(self):
        stats = RepeatedStats((-1.0, -2.0, -3.0))
        assert stats.mean == pytest.approx(-2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.cov == pytest.approx(0.5)
