"""The fault injector: arms scheduled faults and accounts recoveries.

One injector drives one run.  Seams call :meth:`FaultInjector.arm` once
per *attempt* (so a retried read arms a fresh occurrence), and the
recovery paths report back through ``record_*`` so that

* every injected fault and recovery lands in the guarded telemetry
  counters (``fault.injected`` / ``fault.recovered`` / ``fault.retries``
  / ``fault.degraded``, labelled by site), and
* :meth:`summary` gives the harness a plain-dict view even when
  telemetry is off.

A healthy run always ends with ``recovered == injected``; the
acceptance tests assert exactly that.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.resilience.plan import DEFAULT_POLICY, FaultPlan, FaultSpec, \
    RecoveryPolicy, SITES
from repro.telemetry import runtime as telemetry


class FaultInjector:
    """Replays a :class:`FaultPlan` against the run's fault sites."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._occurrences: Dict[str, int] = {site: 0 for site in SITES}
        self._totals: Dict[str, int] = {
            "injected": 0, "recovered": 0, "retries": 0, "degraded": 0,
        }
        self._by_site: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    def arm(self, site: str) -> Optional[FaultSpec]:
        """Advance the site's occurrence counter; return a due fault."""
        self._occurrences[site] += 1
        occurrence = self._occurrences[site]
        for fault in self.plan.faults:
            if fault.site == site and fault.covers(occurrence):
                return fault
        return None

    def occurrence(self, site: str) -> int:
        """How many times ``site`` has been armed so far."""
        return self._occurrences[site]

    def policy(self, site: str) -> RecoveryPolicy:
        return self.plan.policy(site)

    def backoff_delay(self, site: str, attempt: int) -> float:
        """Virtual seconds to back off before retry ``attempt`` (1-based)."""
        policy = self.policy(site)
        delay = policy.backoff * policy.factor ** (attempt - 1)
        if policy.jitter > 0 and delay > 0:
            # Seeded per (plan, site, attempt): deterministic across runs.
            rng = np.random.default_rng(
                [self.plan.seed, SITES.index(site), attempt]
            )
            delay *= 1.0 + policy.jitter * rng.uniform(-1.0, 1.0)
        return delay

    # ------------------------------------------------------------------
    def _bump(self, event: str, site: str) -> None:
        self._totals[event] += 1
        bucket = self._by_site.setdefault(
            site, {"injected": 0, "recovered": 0, "retries": 0, "degraded": 0}
        )
        bucket[event] += 1

    def record_injected(self, site: str, kind: str) -> None:
        self._bump("injected", site)
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("fault.injected", site=site, kind=kind).inc()

    def record_recovered(self, site: str, action: str) -> None:
        self._bump("recovered", site)
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("fault.recovered", site=site, action=action).inc()

    def record_retry(self, site: str) -> None:
        self._bump("retries", site)
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("fault.retries", site=site).inc()

    def record_degraded(self, site: str) -> None:
        self._bump("degraded", site)
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("fault.degraded", site=site).inc()

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Plain-dict totals for :class:`ExperimentResult` and the CLI."""
        out: Dict[str, object] = dict(self._totals)
        out["sites"] = {site: dict(counts)
                        for site, counts in sorted(self._by_site.items())}
        return out


__all__ = ["DEFAULT_POLICY", "FaultInjector"]
