"""Tests for the unfused gather/scatter path (and its deliberate OOM)."""

import numpy as np
import pytest

from repro.errors import OutOfMemoryError
from repro.kernels.adj import SparseAdj
from repro.kernels.scatter import gather, scatter_add, scatter_mean
from repro.kernels.spmm import spmm
from repro.tensor.tensor import Tensor

RNG = np.random.default_rng(11)


class TestGather:
    def test_gathers_src_rows(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 5)).astype(np.float32))
        out = gather(small_adj, x, side="src")
        assert np.allclose(out.data, x.data[small_adj.src])

    def test_gathers_dst_rows(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_dst, 5)).astype(np.float32))
        out = gather(small_adj, x, side="dst")
        assert np.allclose(out.data, x.data[small_adj.dst])

    def test_invalid_side_rejected(self, small_adj):
        with pytest.raises(ValueError):
            gather(small_adj, Tensor(np.zeros((40, 2), dtype=np.float32)), side="mid")

    def test_backward_scatters(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 3)).astype(np.float32),
                   requires_grad=True)
        gather(small_adj, x).sum().backward()
        expected = np.zeros_like(x.data)
        np.add.at(expected, small_adj.src, np.ones((small_adj.num_edges, 3)))
        assert np.allclose(x.grad, expected)

    def test_materializes_logical_edge_buffer(self, machine):
        """The unfused path's defining property: E_logical x F allocation."""
        adj = SparseAdj(np.array([0, 1]), np.array([0, 1]), 2, 2,
                        device=machine.cpu, edge_scale=100.0)
        x = Tensor(np.ones((2, 8), dtype=np.float32), device=machine.cpu)
        before = machine.cpu.memory.in_use
        out = gather(adj, x)
        grown = machine.cpu.memory.in_use - before
        assert grown >= out.nbytes * 100

    def test_oom_when_logical_buffer_exceeds_vram(self, machine):
        """PyG's GAT on Reddit: E x F at paper scale blows 48 GB."""
        edge_scale = 1e9  # 2 edges -> 2e9 logical edges
        adj = SparseAdj(np.array([0, 1]), np.array([0, 1]), 2, 2,
                        device=machine.gpu, edge_scale=edge_scale)
        x = Tensor(np.ones((2, 64), dtype=np.float32), device=machine.gpu)
        with pytest.raises(OutOfMemoryError):
            gather(adj, x)


class TestScatter:
    def test_scatter_add_matches_spmm(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 4)).astype(np.float32))
        fused = spmm(small_adj, x)
        unfused = scatter_add(small_adj, gather(small_adj, x))
        assert np.allclose(fused.data, unfused.data, atol=1e-4)

    def test_scatter_mean_normalizes_by_in_degree(self):
        adj = SparseAdj(np.array([0, 1, 2]), np.array([0, 0, 1]), 3, 2)
        msgs = Tensor(np.array([[2.0], [4.0], [6.0]], dtype=np.float32))
        out = scatter_mean(adj, msgs)
        assert out.data[0, 0] == pytest.approx(3.0)
        assert out.data[1, 0] == pytest.approx(6.0)

    def test_scatter_mean_isolated_dst_is_zero(self):
        adj = SparseAdj(np.array([0]), np.array([0]), 1, 3)
        msgs = Tensor(np.ones((1, 2), dtype=np.float32))
        out = scatter_mean(adj, msgs)
        assert np.allclose(out.data[1:], 0.0)

    def test_shape_validation(self, small_adj):
        with pytest.raises(ValueError):
            scatter_add(small_adj, Tensor(np.zeros((3, 2), dtype=np.float32)))

    def test_backward_gathers(self, small_adj):
        msgs = Tensor(RNG.random((small_adj.num_edges, 3)).astype(np.float32),
                      requires_grad=True)
        scatter_add(small_adj, msgs).sum().backward()
        assert np.allclose(msgs.grad, 1.0)

    def test_multihead_messages(self, small_adj):
        msgs = Tensor(RNG.random((small_adj.num_edges, 2, 3)).astype(np.float32))
        out = scatter_add(small_adj, msgs)
        assert out.shape == (small_adj.num_dst, 2, 3)
