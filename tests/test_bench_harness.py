"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.bench.format import format_matrix, format_series
from repro.bench.harness import (
    measure_conv_forward,
    measure_data_loader,
    measure_sampler_epoch,
    run_fullbatch_experiment,
    run_training_experiment,
)
from repro.errors import BenchmarkError

SMALL = dict(dataset_scale=0.3)


class TestTrainingExperiment:
    def test_returns_breakdown_and_energy(self):
        result = run_training_experiment("dglite", "ppi", "graphsage",
                                         placement="cpu", epochs=1,
                                         representative_batches=2, **SMALL)
        assert result.label == "DGL-CPU"
        assert result.total_time > 0
        assert result.total_energy > 0
        assert result.energy.duration == pytest.approx(result.total_time, rel=0.01)
        assert {"data_loading", "sampling", "training"} <= set(result.phases)

    def test_unknown_model_rejected(self):
        with pytest.raises(BenchmarkError):
            run_training_experiment("dglite", "ppi", "transformer")

    def test_gpu_placement_restricted_to_graphsage(self):
        with pytest.raises(BenchmarkError):
            run_training_experiment("dglite", "ppi", "clustergcn",
                                    placement="gpu", **SMALL)

    def test_labels(self):
        result = run_training_experiment("pyglite", "ppi", "graphsaint",
                                         placement="cpugpu", epochs=1,
                                         representative_batches=1, **SMALL)
        assert result.label == "PyG-CPUGPU"

    def test_preload_label(self):
        result = run_training_experiment("dglite", "ppi", "graphsage",
                                         placement="cpugpu", preload=True,
                                         epochs=1, representative_batches=1,
                                         **SMALL)
        assert result.label == "DGL-CPUGPU+preload"

    def test_experiments_are_independent(self):
        a = run_training_experiment("dglite", "ppi", "graphsage", epochs=1,
                                    representative_batches=1, **SMALL)
        b = run_training_experiment("dglite", "ppi", "graphsage", epochs=1,
                                    representative_batches=1, **SMALL)
        assert a.total_time == pytest.approx(b.total_time, rel=1e-6)


class TestFullbatchExperiment:
    def test_per_epoch_training_time(self):
        result = run_fullbatch_experiment("dglite", "ppi", device="cpu",
                                          epochs=4, **SMALL)
        assert result.phases["training"] > 0
        assert len(result.losses) == 4

    def test_gpu_device(self):
        result = run_fullbatch_experiment("pyglite", "ppi", device="gpu",
                                          epochs=1, **SMALL)
        assert result.phases.get("data_movement", 0) > 0


class TestFunctionalMeasurements:
    def test_data_loader_positive(self):
        assert measure_data_loader("dglite", "ppi", **SMALL) > 0

    def test_sampler_epoch_fields(self):
        out = measure_sampler_epoch("dglite", "ppi", "neighbor", **SMALL)
        assert out["epoch"] > 0
        assert out["batches"] >= 1

    def test_cluster_one_time_includes_partition(self):
        out = measure_sampler_epoch("pyglite", "ppi", "cluster", **SMALL)
        assert out["one_time"] > 0

    def test_unknown_sampler_rejected(self):
        with pytest.raises(BenchmarkError):
            measure_sampler_epoch("dglite", "ppi", "frontier", **SMALL)

    def test_conv_forward_cpu_gpu(self):
        cpu = measure_conv_forward("dglite", "ppi", "gcn", device="cpu", **SMALL)
        gpu = measure_conv_forward("dglite", "ppi", "gcn", device="gpu", **SMALL)
        assert cpu.phases["forward"] > 0
        assert gpu.phases["forward"] > 0

    def test_conv_forward_oom_reported_not_raised(self):
        result = measure_conv_forward("pyglite", "reddit", "gat", device="gpu")
        assert result.oom
        assert "out of memory" in result.error


class TestFormatting:
    def test_format_series(self):
        text = format_series("Fig X", {"DGL": {"ppi": 1.0}, "PyG": {"ppi": 2.0}})
        assert "Fig X" in text and "DGL" in text and "ppi" in text

    def test_format_matrix_with_oom_strings(self):
        text = format_matrix("Fig 5", ["DGL"], ["reddit"],
                             {("DGL", "reddit"): "OOM"})
        assert "OOM" in text

    def test_missing_cells_render_dash(self):
        text = format_series("t", {"a": {"x": 1.0}, "b": {}})
        assert "-" in text

    def test_long_column_names_stay_aligned(self):
        # "ogbn-products" (13 chars) used to overflow the numeric-only
        # 12-char column width and shear every header off its values.
        text = format_series("Fig", {"DGL": {"ogbn-products": 1.0,
                                             "ppi": 2.0}})
        header, row = text.splitlines()[2:4]
        # Golden layout: 10-char label gutter, then 15-char right-aligned
        # columns (widest name, 13 chars, + 2 padding).
        assert header == " " * 10 + "  ogbn-products" + " " * 12 + "ppi"
        assert row == "DGL" + " " * 7 + " " * 9 + "1.0000" + " " * 9 + "2.0000"
        # Every value's last digit lines up under its column name's last char.
        assert header.index("ogbn-products") + len("ogbn-products") \
            == row.index("1.0000") + len("1.0000")
        assert header.rstrip().endswith("ppi")
        assert len(header) == len(row)
