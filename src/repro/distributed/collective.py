"""Collective communication cost models (ring all-reduce)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.distributed.machine import MultiGpuMachine
from repro.errors import DeviceError


def ring_allreduce_time(machine: MultiGpuMachine, nbytes: float,
                        num_gpus: Optional[int] = None) -> float:
    """Duration of a bandwidth-optimal ring all-reduce of ``nbytes``.

    Classic model: 2(k-1)/k chunks of the payload traverse the ring, each
    of the 2(k-1) steps paying the link latency.  ``num_gpus`` overrides
    the machine's GPU count for rings over a subset of replicas (the
    resilience layer excludes dead ranks and re-forms the ring).
    """
    k = machine.num_gpus if num_gpus is None else int(num_gpus)
    if k < 2:
        return 0.0
    link = machine.inter_gpu
    steps = 2 * (k - 1)
    return steps * link.latency + (2 * (k - 1) / k) * nbytes / link.bandwidth


def ring_allreduce(machine: MultiGpuMachine, nbytes: float,
                   tag: str = "allreduce",
                   gpus: Optional[Sequence] = None) -> float:
    """Run (charge) one all-reduce: every GPU busy for the full duration.

    ``gpus`` restricts the ring to the given devices (default: all of the
    machine's GPUs); a degraded ring over the surviving replicas is both
    cheaper per step and smaller.
    """
    if nbytes < 0:
        raise DeviceError("negative all-reduce payload")
    ring = list(machine.gpus) if gpus is None else list(gpus)
    seconds = ring_allreduce_time(machine, nbytes, num_gpus=len(ring))
    if seconds <= 0:
        return 0.0
    machine.clock.occupy_parallel(
        {gpu.name: seconds for gpu in ring}, tag=tag
    )
    return seconds
