"""Tests for the shared conv-layer helpers (normalizations, self-loops)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.frameworks.common import (
    dst_rows,
    gcn_norm_weight,
    mean_norm_weight,
    neg_laplacian_weight,
    with_self_loops,
)
from repro.kernels.adj import SparseAdj
from repro.tensor.tensor import Tensor


@pytest.fixture
def square():
    # 0->1, 1->2, 2->0, 0->2
    return SparseAdj(np.array([0, 1, 2, 0]), np.array([1, 2, 0, 2]), 3, 3)


class TestSelfLoops:
    def test_adds_one_loop_per_node(self, square):
        looped = with_self_loops(square)
        assert looped.num_edges == square.num_edges + 3
        loops = (looped.src == looped.dst).sum()
        assert loops == 3

    def test_preserves_scales_and_device(self, machine):
        adj = SparseAdj(np.array([0]), np.array([1]), 2, 2,
                        device=machine.cpu, node_scale=3.0, edge_scale=7.0)
        looped = with_self_loops(adj)
        assert looped.device is machine.cpu
        assert looped.node_scale == 3.0
        assert looped.edge_scale == 7.0

    def test_rejects_bipartite(self):
        adj = SparseAdj(np.array([0]), np.array([0]), num_src=4, num_dst=2)
        with pytest.raises(GraphFormatError):
            with_self_loops(adj)


class TestGcnNorm:
    def test_values_match_formula(self, square):
        looped = with_self_loops(square)
        norm = gcn_norm_weight(looped)
        deg = np.maximum(looped.in_degrees().astype(np.float64), 1.0)
        expected = 1.0 / np.sqrt(deg[looped.src] * deg[looped.dst])
        assert np.allclose(norm.data, expected, atol=1e-6)

    def test_symmetric_normalization_rows_bounded(self, square):
        """Each normalized row sums to <= sqrt(deg) ratio; spectral radius
        of the normalized adjacency is <= 1 (power iteration check)."""
        from repro.kernels.spmm import spmm
        looped = with_self_loops(square)
        norm = gcn_norm_weight(looped)
        x = Tensor(np.random.default_rng(0).random((3, 1)).astype(np.float32))
        for _ in range(30):
            x = spmm(looped, x, weight=norm)
        assert np.isfinite(x.data).all()
        assert np.abs(x.data).max() < 10.0  # no blow-up


class TestMeanNorm:
    def test_turns_sum_into_mean(self, square):
        from repro.kernels.spmm import spmm
        weight = mean_norm_weight(square)
        x = Tensor(np.array([[3.0], [6.0], [9.0]], dtype=np.float32))
        out = spmm(square, x, weight=weight)
        # node 2 receives from 1 and 0 -> mean(6, 3) = 4.5
        assert out.data[2, 0] == pytest.approx(4.5)


class TestNegLaplacian:
    def test_weights_are_negative(self, square):
        norm = neg_laplacian_weight(square)
        assert np.all(norm.data <= 0)


class TestDstRows:
    def test_noop_for_square(self, square):
        x = Tensor(np.random.default_rng(0).random((3, 4)).astype(np.float32))
        assert dst_rows(x, square) is x

    def test_prefix_for_bipartite(self):
        adj = SparseAdj(np.array([0]), np.array([0]), num_src=5, num_dst=2)
        x = Tensor(np.arange(10, dtype=np.float32).reshape(5, 2))
        rows = dst_rows(x, adj)
        assert rows.shape == (2, 2)
        assert np.allclose(rows.data, x.data[:2])
