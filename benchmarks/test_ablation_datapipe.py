"""Ablation: the composable datapipe (``pipeline=off`` vs ``depth-N``).

The serial schedule pays sampling, feature fetch, H2D copy, and training
back-to-back; the datapipe gives each resource its own lane and keeps up
to N mini-batches in flight.  This bench quantifies the epoch-time win on
the CPU-sample/GPU-train placement and pins the two contract guarantees:
the speedup is real (>= 1.3x at the largest committed logical scale) and
the numerics are bit-identical — the pipeline reorders *timelines*, never
execution.
"""

import numpy as np

from conftest import EPOCHS, REPRESENTATIVE_BATCHES, emit

from repro.bench import format_series, run_training_experiment

DATASETS = ("ppi", "flickr", "ogbn-arxiv")
#: The logical scales committed in BENCH_training.json; 0.6 is the
#: largest, where the acceptance threshold applies.
SCALES = (0.3, 0.6)
DEPTH = "depth-4"


def test_ablation_datapipe(once):
    def run():
        out = {}
        for pipeline in ("off", DEPTH):
            out[pipeline] = {
                scale: run_training_experiment(
                    "dglite", "ppi", "graphsage", placement="cpugpu",
                    pipeline=pipeline, epochs=EPOCHS,
                    representative_batches=REPRESENTATIVE_BATCHES,
                    dataset_scale=scale,
                )
                for scale in SCALES
            }
        out["datasets"] = {
            pipeline: {
                ds: run_training_experiment(
                    "dglite", ds, "graphsage", placement="cpugpu",
                    pipeline=pipeline, epochs=EPOCHS,
                    representative_batches=REPRESENTATIVE_BATCHES,
                    dataset_scale=0.3,
                )
                for ds in DATASETS
            }
            for pipeline in ("off", DEPTH)
        }
        return out

    grid = once(run)

    speedups = {
        f"{DEPTH} speedup (ppi)": {
            f"x{scale:g}": (grid["off"][scale].total_time
                            / grid[DEPTH][scale].total_time)
            for scale in SCALES
        },
        f"{DEPTH} speedup (x0.3)": {
            ds: (grid["datasets"]["off"][ds].total_time
                 / grid["datasets"][DEPTH][ds].total_time)
            for ds in DATASETS
        },
        "sampling hidden (ppi)": {
            f"x{scale:g}": 1.0 - (
                grid[DEPTH][scale].phases.get("sampling", 0.0)
                / max(1e-9, grid["off"][scale].phases["sampling"]))
            for scale in SCALES
        },
    }
    emit("ablation_datapipe",
         format_series("Ablation: datapipe streaming (GraphSAGE, cpugpu)",
                       speedups, unit="x / fraction", precision=3))

    # Acceptance: >= 1.3x at the largest committed logical scale.
    largest = max(SCALES)
    assert (grid["off"][largest].total_time
            / grid[DEPTH][largest].total_time) >= 1.3

    # Never slower anywhere; the win comes from hiding sampling + copy.
    for scale in SCALES:
        assert (grid[DEPTH][scale].total_time
                <= grid["off"][scale].total_time * 1.001), scale
    for ds in DATASETS:
        assert (grid["datasets"][DEPTH][ds].total_time
                <= grid["datasets"]["off"][ds].total_time * 1.001), ds

    # Bit-identical numerics: the pipeline may only move timestamps.
    for scale in SCALES:
        assert grid["off"][scale].losses == grid[DEPTH][scale].losses, scale
    for ds in DATASETS:
        assert (grid["datasets"]["off"][ds].losses
                == grid["datasets"][DEPTH][ds].losses), ds


def test_datapipe_parameters_bit_identical(once):
    """Trained parameters agree to <= 1e-9 between off and depth-N."""
    from repro.frameworks import get_framework
    from repro.hardware.machine import paper_testbed
    from repro.models.graphsage import build_graphsage
    from repro.models.trainer import MiniBatchTrainer, TrainConfig
    from repro.profiling.profiler import PhaseProfiler

    def params_for(pipeline):
        fw = get_framework("dglite")
        machine = paper_testbed()
        fgraph = fw.load("ppi", machine, scale=max(SCALES))
        sampler = fw.neighbor_sampler(fgraph, fanouts=(25, 10),
                                      batch_size=512, mode="cpu", seed=0)
        net = build_graphsage(fw, fgraph, seed=0)
        config = TrainConfig(epochs=2, placement="cpugpu",
                             representative_batches=REPRESENTATIVE_BATCHES,
                             seed=0, pipeline=pipeline)
        MiniBatchTrainer(fw, fgraph, sampler, net, config,
                         profiler=PhaseProfiler(machine.clock)).run()
        return np.concatenate([p.data.ravel() for p in net.parameters()])

    p_off = params_for("off")
    p_deep = params_for(DEPTH)
    assert np.abs(p_off - p_deep).max() <= 1e-9
