"""Power and energy measurement for the simulated machine.

This package stands in for CodeCarbon, which the paper uses with a 0.1 s
sampling interval.  The structure mirrors the real tool:

* :class:`RaplMeter` — CPU side; models Intel RAPL energy counters
  (cumulative joules; power is derived as energy / elapsed).
* :class:`NvmlMeter` — GPU side; models pynvml instant power readings
  (watts at sample instants; energy is power x interval).
* :class:`EnergyMonitor` — the CodeCarbon-like tracker that samples both
  meters on the virtual clock and produces an :class:`EnergyReport`.
"""

from repro.power.meter import RaplMeter, NvmlMeter, PowerSample
from repro.power.monitor import EnergyMonitor, EnergyReport

__all__ = [
    "EnergyMonitor",
    "EnergyReport",
    "NvmlMeter",
    "PowerSample",
    "RaplMeter",
]
