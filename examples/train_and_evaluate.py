"""Train, schedule, clip, evaluate: the full model-development loop.

Goes beyond the paper's efficiency measurements to show the library as a
working GNN stack: train full-batch GraphSAGE with a cosine LR schedule
and gradient clipping, evaluate accuracy per split, and run the chunked
layer-wise inference that a deployment would use — all while the virtual
clock keeps charging honest costs.

Run:  python examples/train_and_evaluate.py [dataset]
"""

import sys

from repro.frameworks import get_framework
from repro.hardware import paper_testbed
from repro.models.evaluate import evaluate
from repro.models.fullbatch import FullBatchTrainer, build_fullbatch_sage
from repro.models.inference import layerwise_inference
from repro.tensor.schedule import CosineLR, clip_grad_norm


def main(dataset: str = "flickr") -> None:
    fw = get_framework("dglite")
    machine = paper_testbed()
    fgraph = fw.load(dataset, machine)
    net = build_fullbatch_sage(fw, fgraph, hidden=64, dropout=0.0, seed=0)

    print(f"Dataset {dataset}: {fgraph.stats.logical_num_nodes:,} logical nodes, "
          f"{fgraph.stats.num_classes} classes "
          f"({'multi-label' if fgraph.stats.multilabel else 'single-label'})\n")

    before = evaluate(fw, fgraph, net)
    print(f"untrained  {before.metric}: train={before.train:.3f} "
          f"val={before.val:.3f} test={before.test:.3f}")

    trainer = FullBatchTrainer(fw, fgraph, net, device="cpu", lr=5e-3)
    trainer.setup()
    scheduler = CosineLR(trainer.optimizer, t_max=30, min_lr=5e-4)
    for epoch in range(30):
        loss = trainer.train_epochs(1)[0]
        clip_grad_norm(net.parameters(), max_norm=5.0)
        lr = scheduler.step()
        if epoch % 10 == 9:
            report = evaluate(fw, fgraph, net)
            print(f"epoch {epoch + 1:>3}  loss={loss:.4f}  lr={lr:.2e}  "
                  f"val {report.metric}={report.val:.3f}")

    after = evaluate(fw, fgraph, net)
    print(f"\ntrained    {after.metric}: train={after.train:.3f} "
          f"val={after.val:.3f} test={after.test:.3f}")

    inference = layerwise_inference(fw, fgraph, net, device="cpu")
    print(f"\nlayer-wise inference over the full graph: "
          f"{inference.total_time * 1000:.1f} ms simulated "
          f"(training epochs cost {trainer.epoch_time() / 30 * 1000:.1f} ms each)")
    print(f"total simulated machine time this session: {machine.clock.now:.2f} s")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "flickr")
