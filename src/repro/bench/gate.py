"""Perf-trajectory regression gate over ``BENCH_<area>.json`` baselines.

The gate compares a fresh sweep against the committed baseline artifact
and fails when any cell's gated metric regresses beyond its recorded
noise envelope::

    allowed = max(mean + k * sample_std,      # seeded-repeat noise bound
                  mean * (1 + rel_slack))     # floor for zero-std metrics

Virtual time and energy are deterministic per seed, so their sample-std
across seeds reflects genuine seed sensitivity (sampling order, model
init), not host noise — a tight, honest envelope.  Wall time is recorded
in the artifacts but excluded from gating by default (shared-runner
jitter would make it a flaky gate); pass ``metrics=("wall_s",)`` to
inspect it locally.

Improvements (cells now *below* the envelope) never fail the gate; they
are listed in the report as the cue to refresh the committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.artifacts import (
    GATED_METRICS,
    load_sweep_artifact,
    validate_sweep_artifact,
)

DEFAULT_NOISE_K = 3.0
DEFAULT_REL_SLACK = 0.02


@dataclass(frozen=True)
class CellRegression:
    """One gated metric of one cell exceeding its noise envelope."""

    cell_id: str
    metric: str
    baseline_mean: float
    baseline_std: float
    allowed: float
    current_mean: float
    # Differential-profiling attribution: which phases / kernel families
    # moved between the baseline's recorded breakdown and the fresh run.
    hints: tuple = ()

    @property
    def ratio(self) -> float:
        return (self.current_mean / self.baseline_mean
                if self.baseline_mean else float("inf"))

    def describe(self) -> str:
        return (f"{self.cell_id} {self.metric}: "
                f"{self.baseline_mean:.6g} -> {self.current_mean:.6g} "
                f"({self.ratio:.2f}x, allowed <= {self.allowed:.6g})")


@dataclass
class GateResult:
    """Everything one area's comparison produced."""

    area: str
    regressions: List[CellRegression]
    improvements: List[str]
    problems: List[str]  # structural: schema/matrix mismatches

    @property
    def passed(self) -> bool:
        return not self.regressions and not self.problems


def noise_envelope(mean: float, std: float, k: float = DEFAULT_NOISE_K,
                   rel_slack: float = DEFAULT_REL_SLACK) -> float:
    """Upper bound a fresh measurement may reach without being a regression."""
    return max(mean + k * std, mean * (1.0 + rel_slack))


def compare_artifacts(baseline: dict, current: dict, *,
                      k: float = DEFAULT_NOISE_K,
                      rel_slack: float = DEFAULT_REL_SLACK,
                      metrics: Sequence[str] = GATED_METRICS) -> GateResult:
    """Gate ``current`` against ``baseline``; never raises on bad input."""
    area = baseline.get("area") if isinstance(baseline, dict) else "?"
    result = GateResult(area=str(area), regressions=[], improvements=[],
                        problems=[])
    for name, artifact in (("baseline", baseline), ("current", current)):
        for problem in validate_sweep_artifact(artifact):
            result.problems.append(f"{name} artifact: {problem}")
    if result.problems:
        return result
    if baseline["area"] != current["area"]:
        result.problems.append(
            f"area mismatch: baseline {baseline['area']!r} vs "
            f"current {current['area']!r}")
        return result
    if baseline["seeds"] != current["seeds"]:
        result.problems.append(
            f"seed set changed: {baseline['seeds']} -> {current['seeds']} "
            "(noise envelopes are not comparable)")
        return result
    current_cells = {cell["id"]: cell for cell in current["cells"]}
    for cell in baseline["cells"]:
        cell_id = cell["id"]
        fresh = current_cells.get(cell_id)
        if fresh is None:
            result.problems.append(f"cell {cell_id} missing from current sweep")
            continue
        hints = None
        for metric in metrics:
            base = cell["metrics"][metric]
            now = fresh["metrics"][metric]
            allowed = noise_envelope(base["mean"], base["std"],
                                     k=k, rel_slack=rel_slack)
            if now["mean"] > allowed:
                if hints is None:
                    hints = attribution_hints(cell, fresh)
                result.regressions.append(CellRegression(
                    cell_id=cell_id, metric=metric,
                    baseline_mean=base["mean"], baseline_std=base["std"],
                    allowed=allowed, current_mean=now["mean"],
                    hints=hints))
            elif now["mean"] < base["mean"] * (1.0 - rel_slack):
                result.improvements.append(
                    f"{cell_id} {metric}: {base['mean']:.6g} -> "
                    f"{now['mean']:.6g} "
                    f"({now['mean'] / base['mean']:.2f}x)")
    return result


def attribution_hints(baseline_cell: dict, fresh_cell: dict,
                      per_axis: int = 3) -> tuple:
    """Attribute one cell's regression to phases / kernel families.

    Runs the differential profiler's delta classifier over the
    ``attribution`` breakdowns recorded in each sweep cell (first seed's
    phase and kernel-family virtual seconds), so a gate failure names
    *where* the time appeared, not just that it did.  Empty when neither
    cell recorded attribution (pre-PR-8 baselines).
    """
    from repro.profiling.analysis.diff import classify_deltas

    base_attr = baseline_cell.get("attribution") or {}
    fresh_attr = fresh_cell.get("attribution") or {}
    hints = []
    for axis, title in (("phases", "phase"),
                        ("kernel_families", "kernel family")):
        base_map = {str(k): float(v)
                    for k, v in (base_attr.get(axis) or {}).items()}
        fresh_map = {str(k): float(v)
                     for k, v in (fresh_attr.get(axis) or {}).items()}
        if not base_map and not fresh_map:
            continue
        classified = classify_deltas(base_map, fresh_map)
        entries = [(bucket, entry)
                   for bucket in ("grown", "appeared", "shrunk", "vanished")
                   for entry in classified[bucket]]
        entries.sort(key=lambda item: (-abs(item[1]["delta"]),
                                       item[1]["key"]))
        for bucket, entry in entries[:per_axis]:
            hints.append(
                f"{title} {entry['key']} {bucket}: "
                f"{entry['base']:.6g}s -> {entry['current']:.6g}s "
                f"({entry['delta']:+.6g}s)")
    if not hints and (base_attr or fresh_attr):
        hints.append("attribution unchanged — regression is outside the "
                     "recorded phase/kernel breakdown (wall-only?)")
    return tuple(hints)


def inject_slowdown(artifact: dict, cell_id: str, factor: float) -> dict:
    """Scale one cell's gated metrics by ``factor`` (returns a deep copy).

    This is the gate's self-test hook: a synthetic 2× slowdown injected
    into any cell must make the gate fail and name that cell.
    """
    doctored = json.loads(json.dumps(artifact))
    for cell in doctored.get("cells", []):
        if cell.get("id") != cell_id:
            continue
        for metric in GATED_METRICS:
            stats = cell["metrics"][metric]
            stats["mean"] *= factor
            stats["values"] = [v * factor for v in stats["values"]]
        attribution = cell.get("attribution")
        if isinstance(attribution, dict):
            # Scale the breakdown with the metrics so the self-test also
            # exercises the gate's regression-attribution hints.
            for axis in ("phases", "kernel_families"):
                section = attribution.get(axis)
                if isinstance(section, dict):
                    attribution[axis] = {key: value * factor
                                         for key, value in section.items()}
        return doctored
    raise KeyError(f"no sweep cell with id {cell_id!r}")


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def format_gate_report(results: Sequence[GateResult]) -> str:
    """Human-readable multi-area report naming every offending cell."""
    lines: List[str] = []
    for result in results:
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(f"[{verdict}] bench gate: {result.area} "
                     f"({len(result.regressions)} regression(s), "
                     f"{len(result.problems)} problem(s), "
                     f"{len(result.improvements)} improvement(s))")
        for problem in result.problems:
            lines.append(f"  problem: {problem}")
        hinted = set()
        for regression in result.regressions:
            lines.append(f"  regression: {regression.describe()}")
            if regression.cell_id in hinted:
                continue
            hinted.add(regression.cell_id)
            for hint in regression.hints:
                lines.append(f"    attribution: {hint}")
        for improvement in result.improvements:
            lines.append(f"  improvement: {improvement}")
    overall = all(r.passed for r in results)
    lines.append("perf trajectory OK" if overall
                 else "perf trajectory REGRESSED — investigate or refresh "
                      "the baseline (see docs/bench.md)")
    return "\n".join(lines)


def gate_report_payload(results: Sequence[GateResult]) -> dict:
    """Machine-readable report (versioned like the artifacts)."""
    return {
        "schema": "repro.bench.gate/1",
        "passed": all(r.passed for r in results),
        "areas": [
            {
                "area": r.area,
                "passed": r.passed,
                "problems": list(r.problems),
                "improvements": list(r.improvements),
                "regressions": [
                    {
                        "cell": reg.cell_id,
                        "metric": reg.metric,
                        "baseline_mean": reg.baseline_mean,
                        "baseline_std": reg.baseline_std,
                        "allowed": reg.allowed,
                        "current_mean": reg.current_mean,
                        "ratio": reg.ratio,
                        "hints": list(reg.hints),
                    }
                    for reg in r.regressions
                ],
            }
            for r in results
        ],
    }


def load_baseline(root, area: str) -> Optional[dict]:
    """Load one committed baseline; None when absent."""
    from repro.bench.artifacts import artifact_path

    path = artifact_path(root, area)
    if not path.exists():
        return None
    return load_sweep_artifact(path)
