"""The latency accountant: exact tail quantiles and throughput curves.

Quantiles are computed by the *nearest-rank* method over the exact list
of per-request latencies — no histogram buckets, no interpolation — so
the reported p50/p95/p99 are reproducible to the last bit across runs
with the same seed.  (The telemetry registry's histograms are for live
monitoring; the serving report uses this accountant.)
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.serving.workload import Request


def nearest_rank(sorted_values: List[float], q: float) -> float:
    """The q-th nearest-rank quantile of an ascending-sorted list."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not sorted_values:
        return 0.0
    rank = max(1, int(math.ceil(q * len(sorted_values))))
    return float(sorted_values[rank - 1])


class LatencyAccountant:
    """Collects per-request completion latencies on the virtual clock."""

    def __init__(self) -> None:
        self.latencies: List[float] = []

    def complete(self, request: Request, completion: float) -> None:
        """Record one served request (``completion`` is absolute clock time)."""
        latency = completion - request.arrival
        if latency < 0:
            raise ValueError(
                f"request {request.request_id} completed before it arrived "
                f"({completion} < {request.arrival})")
        self.latencies.append(latency)

    @property
    def count(self) -> int:
        return len(self.latencies)

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99 plus mean and max, exact over all completions."""
        ordered = sorted(self.latencies)
        total = sum(ordered)
        return {
            "p50": nearest_rank(ordered, 0.50),
            "p95": nearest_rank(ordered, 0.95),
            "p99": nearest_rank(ordered, 0.99),
            "mean": total / len(ordered) if ordered else 0.0,
            "max": ordered[-1] if ordered else 0.0,
        }

    def throughput(self, makespan: float) -> float:
        """Completed requests per second of serving window."""
        return self.count / makespan if makespan > 0 else 0.0
