"""DGLite conv layers — all message passing through fused kernels.

Every layer follows DGL's ``g.update_all(message, reduce)`` pattern, which
the runtime lowers to one fused g-SpMM (weighted aggregation) or g-SDDMM
(per-edge score) kernel.  Working sets stay O(E + N*F): per-edge *feature*
buffers are never materialized, only per-edge scalars/scores (E x H).
"""

from __future__ import annotations

from typing import Optional

from repro.frameworks.common import (
    dst_rows,
    gcn_norm_weight,
    mean_norm_weight,
    neg_laplacian_weight,
    with_self_loops,
)
from repro.kernels.adj import SparseAdj
from repro.kernels.sddmm import fused_gatv2_scores, sddmm_u_add_v, segment_softmax
from repro.kernels.spmm import spmm
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.module import Linear, Module, Parameter
from repro.tensor.tensor import Tensor


class GCNConv(Module):
    """Kipf & Welling GCN layer: ``H' = D~^-1/2 A~ D~^-1/2 H W``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, seed=seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = self.linear(x)
        return spmm(adj_sl, h, weight=norm)


class GCN2Conv(Module):
    """GCNII layer (Chen et al. 2020) with initial residual + identity map.

    ``support = (1-alpha) * A~H + alpha * H0``
    ``out = (1-beta) * support + beta * support @ W``
    """

    def __init__(self, in_features: int, out_features: int, alpha: float = 0.1,
                 beta: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__()
        if in_features != out_features:
            raise ValueError("GCN2Conv requires in_features == out_features")
        self.alpha = alpha
        self.beta = beta
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), seed=seed))

    def forward(self, adj: SparseAdj, x: Tensor, x0: Optional[Tensor] = None) -> Tensor:
        if x0 is None:
            x0 = x
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = spmm(adj_sl, x, weight=norm)
        support = h * (1.0 - self.alpha) + x0 * self.alpha
        return support * (1.0 - self.beta) + (support @ self.weight) * self.beta


class ChebConv(Module):
    """Chebyshev spectral conv (Defferrard et al.) of order K.

    With lambda_max = 2 the scaled Laplacian is ``L~ = -D^-1/2 A D^-1/2``;
    the recurrence ``T_k = 2 L~ T_{k-1} - T_{k-2}`` runs as K-1 fused SpMMs.
    """

    def __init__(self, in_features: int, out_features: int, k: int = 3,
                 bias: bool = True, seed: Optional[int] = None) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("ChebConv order k must be >= 1")
        self.k = k
        for i in range(k):
            layer_seed = None if seed is None else seed + i
            setattr(self, f"lin{i}", Linear(in_features, out_features,
                                            bias=(bias and i == 0), seed=layer_seed))

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        norm = neg_laplacian_weight(adj)
        t_prev, t_curr = None, x
        out = self.lin0(x)
        for i in range(1, self.k):
            if i == 1:
                t_next = spmm(adj, t_curr, weight=norm)
            else:
                t_next = spmm(adj, t_curr, weight=norm) * 2.0 - t_prev
            out = out + getattr(self, f"lin{i}")(t_next)
            t_prev, t_curr = t_curr, t_next
        return out


class SAGEConv(Module):
    """GraphSAGE mean-aggregator layer (supports bipartite blocks)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.lin_self = Linear(in_features, out_features, bias=bias, seed=seed)
        neigh_seed = None if seed is None else seed + 100
        self.lin_neigh = Linear(in_features, out_features, bias=False, seed=neigh_seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        mean_w = mean_norm_weight(adj)
        aggregated = spmm(adj, x, weight=mean_w)
        return self.lin_self(dst_rows(x, adj)) + self.lin_neigh(aggregated)


class GATConv(Module):
    """Graph attention layer (Velickovic et al.), fused g-SDDMM scores.

    Output concatenates ``heads`` heads of ``out_features / heads`` dims.
    """

    def __init__(self, in_features: int, out_features: int, heads: int = 4,
                 negative_slope: float = 0.2, seed: Optional[int] = None) -> None:
        super().__init__()
        if out_features % heads:
            raise ValueError("out_features must be divisible by heads")
        self.heads = heads
        self.head_dim = out_features // heads
        self.negative_slope = negative_slope
        self.lin = Linear(in_features, out_features, bias=False, seed=seed)
        att_seed = seed if seed is None else seed + 200
        self.att_src = Parameter(init.xavier_uniform((heads, self.head_dim), seed=att_seed))
        self.att_dst = Parameter(
            init.xavier_uniform((heads, self.head_dim),
                                seed=None if seed is None else seed + 201)
        )

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        z = self.lin(x).reshape(x.shape[0], self.heads, self.head_dim)
        z_dst = dst_rows(z, adj)
        # Per-node attention halves: (N, H) each, then one fused SDDMM.
        a_src = (z * self.att_src).sum(axis=2)
        a_dst = (z_dst * self.att_dst).sum(axis=2)
        scores = sddmm_u_add_v(adj, a_src, a_dst)
        scores = F.leaky_relu(scores, self.negative_slope)
        alpha = segment_softmax(adj, scores)
        out = spmm(adj, z, weight=alpha)
        return out.reshape(adj.num_dst, self.heads * self.head_dim)


class GATv2Conv(Module):
    """GATv2 (Brody et al.): attention MLP after combining endpoints.

    The score ``a . leaky_relu(W_l x_src + W_r x_dst)`` is computed by one
    fused g-SDDMM kernel; the E x H x D intermediate never leaves it.
    """

    def __init__(self, in_features: int, out_features: int, heads: int = 4,
                 negative_slope: float = 0.2, seed: Optional[int] = None) -> None:
        super().__init__()
        if out_features % heads:
            raise ValueError("out_features must be divisible by heads")
        self.heads = heads
        self.head_dim = out_features // heads
        self.negative_slope = negative_slope
        self.lin_src = Linear(in_features, out_features, bias=False, seed=seed)
        self.lin_dst = Linear(in_features, out_features, bias=False,
                              seed=None if seed is None else seed + 300)
        self.att = Parameter(
            init.xavier_uniform((heads, self.head_dim),
                                seed=None if seed is None else seed + 301)
        )

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        z_src = self.lin_src(x).reshape(x.shape[0], self.heads, self.head_dim)
        z_dst_full = self.lin_dst(dst_rows(x, adj))
        z_dst = z_dst_full.reshape(adj.num_dst, self.heads, self.head_dim)
        scores = fused_gatv2_scores(adj, z_src, z_dst, self.att, self.negative_slope)
        alpha = segment_softmax(adj, scores)
        out = spmm(adj, z_src, weight=alpha)
        return out.reshape(adj.num_dst, self.heads * self.head_dim)


class TAGConv(Module):
    """Topology-adaptive GCN (Du et al.): ``sum_k A~^k X W_k`` with K hops."""

    def __init__(self, in_features: int, out_features: int, k: int = 3,
                 bias: bool = True, seed: Optional[int] = None) -> None:
        super().__init__()
        if k < 0:
            raise ValueError("TAGConv k must be >= 0")
        self.k = k
        for i in range(k + 1):
            setattr(self, f"lin{i}", Linear(in_features, out_features,
                                            bias=(bias and i == 0),
                                            seed=None if seed is None else seed + i))

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        out = self.lin0(x)
        h = x
        for i in range(1, self.k + 1):
            h = spmm(adj_sl, h, weight=norm)
            out = out + getattr(self, f"lin{i}")(h)
        return out


class SGConv(Module):
    """Simplified GCN (Wu et al.): ``A~^K X W`` — K SpMMs then one GEMM."""

    def __init__(self, in_features: int, out_features: int, k: int = 2,
                 bias: bool = True, seed: Optional[int] = None) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("SGConv k must be >= 1")
        self.k = k
        self.linear = Linear(in_features, out_features, bias=bias, seed=seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = x
        for _ in range(self.k):
            h = spmm(adj_sl, h, weight=norm)
        return self.linear(h)


class APPNPConv(Module):
    """APPNP (Klicpera et al. 2019): predict-then-propagate.

    ``H = MLP(X)`` followed by K personalized-PageRank propagation steps
    ``Z = (1-alpha) A~ Z + alpha H`` — each step one fused SpMM.  Extension
    layer (not part of the paper's Figure 5 eight).
    """

    def __init__(self, in_features: int, out_features: int, k: int = 10,
                 alpha: float = 0.1, seed: Optional[int] = None) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("APPNP k must be >= 1")
        if not (0.0 < alpha < 1.0):
            raise ValueError("APPNP alpha must be in (0, 1)")
        self.k = k
        self.alpha = alpha
        self.linear = Linear(in_features, out_features, seed=seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = self.linear(x)
        z = h
        for _ in range(self.k):
            z = spmm(adj_sl, z, weight=norm) * (1.0 - self.alpha) + h * self.alpha
        return z


class GINConv(Module):
    """GIN (Xu et al. 2019): ``MLP((1 + eps) h + sum_neigh h)``, fused sum."""

    def __init__(self, in_features: int, out_features: int,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.eps = Parameter(init.zeros((1,)))
        self.lin1 = Linear(in_features, out_features, seed=seed)
        self.lin2 = Linear(out_features, out_features,
                           seed=None if seed is None else seed + 1)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        aggregated = spmm(adj, x)
        combined = x * (self.eps + 1.0) + aggregated
        return self.lin2(F.relu(self.lin1(combined)))


class GraphConv(Module):
    """Plain sum-aggregation convolution: ``H' = (A + I) H W`` (fused)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, seed=seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        h = self.linear(x)
        return spmm(adj_sl, h)
