"""Figures 14-17: GraphSAINT runtime breakdown, total, power, and energy."""

from conftest import DATASETS, emit
from grid import (
    assert_common_shapes,
    breakdown_table,
    energy_table,
    power_table,
    run_model_grid,
    totals_table,
)


def test_fig14_17_graphsaint(once):
    grid = once(lambda: run_model_grid("graphsaint"))

    emit("fig14_graphsaint_breakdown",
         breakdown_table("Figure 14: GraphSAINT runtime breakdown (10 epochs)", grid))
    emit("fig15_graphsaint_total",
         totals_table("Figure 15: GraphSAINT total runtime", grid))
    emit("fig16_graphsaint_power",
         power_table("Figure 16: GraphSAINT average power", grid))
    emit("fig17_graphsaint_energy",
         energy_table("Figure 17: GraphSAINT energy consumption", grid))

    assert_common_shapes(grid, "graphsaint")

    # Observation 5 (GraphSAINT nuance): with the light-weight SAINT
    # sampler, PyG-CPUGPU beats DGL-CPUGPU on at least some small/medium
    # graphs (small subgraphs favour PyG's low GPU overhead).
    wins = [
        ds for ds in DATASETS
        if grid["PyG-CPUGPU"][ds].total_time < grid["DGL-CPUGPU"][ds].total_time
    ]
    assert wins, "PyG-CPUGPU never wins with GraphSAINT"
    assert "ppi" in wins or "flickr" in wins or "ogbn-arxiv" in wins
