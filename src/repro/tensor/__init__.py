"""A numpy-backed reverse-mode autograd engine (the PyTorch substitute).

Every tensor op runs real numpy math *and* charges simulated time to the
device the tensor lives on, scaled by the framework profile that is active
(see :mod:`repro.tensor.context`).  Gradients are exact; tests verify them
against finite differences.
"""

from repro.tensor.context import (
    CostProfile,
    GENERIC_PROFILE,
    active_profile,
    charge,
    use_profile,
)
from repro.tensor.tensor import Tensor, no_grad
from repro.tensor import functional
from repro.tensor.module import Module, Parameter, Linear, Sequential, Dropout
from repro.tensor.optim import SGD, Adam, Optimizer
from repro.tensor.schedule import CosineLR, StepLR, WarmupLR, clip_grad_norm
from repro.tensor import init

__all__ = [
    "Adam",
    "CosineLR",
    "CostProfile",
    "StepLR",
    "WarmupLR",
    "clip_grad_norm",
    "Dropout",
    "GENERIC_PROFILE",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "Sequential",
    "Tensor",
    "active_profile",
    "charge",
    "functional",
    "init",
    "no_grad",
    "use_profile",
]
