"""Figures 6-9: GraphSAGE runtime breakdown, total, power, and energy."""

from conftest import emit
from grid import (
    assert_common_shapes,
    breakdown_table,
    energy_table,
    power_table,
    run_model_grid,
    totals_table,
)


def test_fig06_09_graphsage(once):
    grid = once(lambda: run_model_grid("graphsage"))

    emit("fig06_graphsage_breakdown",
         breakdown_table("Figure 6: GraphSAGE runtime breakdown (10 epochs)", grid))
    emit("fig07_graphsage_total",
         totals_table("Figure 7: GraphSAGE total runtime", grid))
    emit("fig08_graphsage_power",
         power_table("Figure 8: GraphSAGE average power", grid))
    emit("fig09_graphsage_energy",
         energy_table("Figure 9: GraphSAGE energy consumption", grid))

    assert_common_shapes(grid, "graphsage")

    # GraphSAGE-specific: neighborhood sampling is the dominant phase for
    # PyG on every dataset (Python sampler, Observation 4).
    for ds, result in grid["PyG-CPU"].items():
        assert result.phase_fraction("sampling") > 0.4, ds
