"""Figure 4: per-epoch runtime of the three graph samplers."""

from conftest import DATASETS, FRAMEWORKS, emit

from repro.bench import format_series, measure_sampler_epoch

SAMPLERS = ("neighbor", "cluster", "saint_rw")
LABELS = {"neighbor": "GraphSAGE", "cluster": "ClusterGCN", "saint_rw": "GraphSAINT"}


def test_fig04_samplers(once):
    def run():
        out = {}
        for sampler in SAMPLERS:
            for fw in FRAMEWORKS:
                row = {}
                for ds in DATASETS:
                    row[ds] = measure_sampler_epoch(fw, ds, sampler)["epoch"]
                out[f"{LABELS[sampler]}/{fw}"] = row
        return out

    results = once(run)
    emit("fig04_samplers",
         format_series("Figure 4: sampler runtime per epoch", results, unit="s"))

    # Observation 2: every DGL sampler beats its PyG counterpart, on
    # every dataset.
    for sampler in SAMPLERS:
        for ds in DATASETS:
            dgl = results[f"{LABELS[sampler]}/dglite"][ds]
            pyg = results[f"{LABELS[sampler]}/pyglite"][ds]
            assert dgl < pyg, (sampler, ds)

    # The gap is smallest for GraphSAINT (computationally cheapest).
    def mean_ratio(sampler):
        vals = [
            results[f"{LABELS[sampler]}/pyglite"][ds]
            / results[f"{LABELS[sampler]}/dglite"][ds]
            for ds in DATASETS
        ]
        return sum(vals) / len(vals)

    ratios = {s: mean_ratio(s) for s in SAMPLERS}
    assert ratios["saint_rw"] == min(ratios.values())

    # GraphSAINT is the fastest sampler overall (per framework, per dataset).
    for fw in FRAMEWORKS:
        for ds in DATASETS:
            times = {s: results[f"{LABELS[s]}/{fw}"][ds] for s in SAMPLERS}
            assert times["saint_rw"] == min(times.values()), (fw, ds)
