"""ogbn-arxiv: citation network of arXiv CS papers (OGB node property task).

Table 1: 169,343 nodes / 1,166,243 edges / 128 features / 40 classes,
split 0.54 / 0.29 / 0.17.  OGB datasets are loaded via the ogb package in
both frameworks, so neither bundles it natively (PyG integrates the OGB
interface more tightly, which the loader profile reflects).
"""

from repro.datasets.base import DatasetSpec
from repro.graph.graph import Split

SPEC = DatasetSpec(
    name="ogbn-arxiv",
    description="Citation Network of arXiv CS papers",
    logical_num_nodes=169_343,
    logical_num_edges=1_166_243,
    num_features=128,
    num_classes=40,
    multilabel=False,
    split=Split(0.54, 0.29, 0.17),
    actual_num_nodes=3_600,
    actual_num_edges=26_000,
    num_communities=40,
    intra_prob=0.8,
    degree_exponent=2.2,
    in_dgl=False,
    in_pyg=True,
    seed=33,
)
