"""Host <-> device movement of tensors and graph structures.

This is the paper's "data movement" phase: copying mini-batch adjacency
structures, fetched node features, and initial model weights from CPU to
GPU over PCIe.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.device import Device
from repro.hardware.interconnect import Interconnect
from repro.kernels.adj import SparseAdj
from repro.tensor.tensor import Tensor


def to_device(x: Tensor, device: Optional[Device], link: Optional[Interconnect] = None,
              tag: str = "tensor") -> Tensor:
    """Copy a tensor to ``device``, charging the PCIe transfer if given.

    Direction is inferred from the endpoint kinds; host-to-host or
    device-local copies charge nothing on the link.
    """
    if x.device is device:
        return x
    if link is not None and device is not None:
        src_kind = x.device.kind if x.device is not None else "cpu"
        if src_kind == "cpu" and device.kind == "gpu":
            link.h2d(x.logical_nbytes, tag=tag)
        elif src_kind == "gpu" and device.kind == "cpu":
            link.d2h(x.logical_nbytes, tag=tag)
    moved = Tensor(
        x.data,
        device=device,
        requires_grad=x.requires_grad,
        work_scale=x.work_scale,
        _op="to_device",
    )
    return moved


def adj_to_device(adj: SparseAdj, device: Optional[Device],
                  link: Optional[Interconnect] = None, tag: str = "graph") -> SparseAdj:
    """Move an adjacency structure, charging its logical structure bytes."""
    if adj.device is device:
        return adj
    if link is not None and device is not None:
        src_kind = adj.device.kind if adj.device is not None else "cpu"
        if src_kind == "cpu" and device.kind == "gpu":
            link.h2d(adj.structure_nbytes(), tag=tag)
        elif src_kind == "gpu" and device.kind == "cpu":
            link.d2h(adj.structure_nbytes(), tag=tag)
    # Note: on the serial schedule, transient mini-batch structures are
    # not pinned in the ledger (one batch lives at a time; its footprint
    # is negligible next to persistent residency).  Pipelined runs keep
    # up to ``depth`` batches in flight, so their staging and landing
    # buffers ARE ledger-accounted — see repro.datapipe.staging.StagingPool.
    # Persistent residency (pre-loading the full graph) stays allocated
    # explicitly by the experiment that opts into it.
    return adj.with_device(device)


def graph_bytes(adj: SparseAdj) -> float:
    """Logical bytes of a graph structure (helper for movement accounting)."""
    return adj.structure_nbytes()
