"""The versioned ``repro.profile/1`` artifact schema.

Both analysis outputs ship under one schema id with a ``kind``
discriminator:

* ``kind: "analysis"`` — ``profile.json`` from ``repro profile analyze``
  (critical path + roofline + flamegraph summary for one run).
* ``kind: "diff"`` — ``diff.json`` from ``repro profile diff`` (delta
  attribution between two runs).

Writers are atomic and validate before writing, mirroring the
``BENCH_*.json`` conventions in :mod:`repro.bench.artifacts`: a crash
mid-write never leaves a truncated-but-parseable artifact, and an
invalid payload is refused rather than persisted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

PROFILE_SCHEMA = "repro.profile/1"
PROFILE_KINDS = ("analysis", "diff")

_DELTA_AXES = ("spans", "phases", "kernel_families", "kernels", "fastpath")
_DELTA_BUCKETS = ("grown", "shrunk", "appeared", "vanished")


def build_profile_payload(*, run: dict, critical_path: dict, roofline: dict,
                          flame: dict) -> dict:
    """Frame one run's analyses as a ``repro.profile/1`` artifact."""
    return {
        "schema": PROFILE_SCHEMA,
        "kind": "analysis",
        "run": dict(run),
        "critical_path": dict(critical_path),
        "roofline": dict(roofline),
        "flame": dict(flame),
    }


def build_diff_payload(diff: dict) -> dict:
    """Frame a :func:`~repro.profiling.analysis.diff.diff_bundles` result."""
    payload = {"schema": PROFILE_SCHEMA, "kind": "diff"}
    payload.update(diff)
    return payload


def write_profile_json(path: Union[str, Path], payload: dict) -> Path:
    """Validate then atomically write one profile artifact."""
    from repro.bench.artifacts import atomic_write_text

    problems = validate_profile_payload(payload)
    if problems:
        raise ValueError(
            f"refusing to write invalid profile artifact: {problems[0]}"
            + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else ""))
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_profile_json(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# validators
# ----------------------------------------------------------------------
def validate_profile_payload(payload: object) -> List[str]:
    """Schema-gate either profile kind; returns human-readable problems."""
    if not isinstance(payload, dict):
        return ["profile payload is not a JSON object"]
    problems: List[str] = []
    if payload.get("schema") != PROFILE_SCHEMA:
        problems.append(f"unknown schema {payload.get('schema')!r} "
                        f"(expected {PROFILE_SCHEMA})")
    kind = payload.get("kind")
    if kind not in PROFILE_KINDS:
        problems.append(f"unknown kind {kind!r} (expected one of "
                        f"{PROFILE_KINDS})")
        return problems
    if kind == "analysis":
        problems.extend(_validate_analysis(payload))
    else:
        problems.extend(_validate_diff(payload))
    return problems


def _validate_analysis(payload: dict) -> List[str]:
    problems: List[str] = []
    for key in ("run", "critical_path", "roofline", "flame"):
        if not isinstance(payload.get(key), dict):
            problems.append(f"missing section {key!r}")
    if problems:
        return problems
    critical = payload["critical_path"]
    for key in ("makespan", "critical_seconds", "idle_seconds",
                "overlap_seconds", "coverage"):
        if not isinstance(critical.get(key), (int, float)):
            problems.append(f"critical_path.{key} missing or non-numeric")
    if not isinstance(critical.get("segments"), list):
        problems.append("critical_path.segments must be a list")
    if not isinstance(critical.get("by_lane"), dict):
        problems.append("critical_path.by_lane must be an object")
    roofline = payload["roofline"]
    kernels = roofline.get("kernels")
    if not isinstance(kernels, list):
        problems.append("roofline.kernels must be a list")
    else:
        for entry in kernels:
            problems.extend(_validate_roofline_entry(entry))
    if not isinstance(roofline.get("seconds_by_bound"), dict):
        problems.append("roofline.seconds_by_bound must be an object")
    flame = payload["flame"]
    if not isinstance(flame.get("stacks"), int) or flame.get("stacks", -1) < 0:
        problems.append("flame.stacks must be a non-negative integer")
    if not isinstance(flame.get("total_micros"), int):
        problems.append("flame.total_micros must be an integer")
    return problems


def _validate_roofline_entry(entry: object) -> List[str]:
    if not isinstance(entry, dict):
        return ["roofline kernel entry is not an object"]
    problems = []
    name = entry.get("kernel")
    if not isinstance(name, str):
        problems.append("roofline kernel entry missing kernel name")
    if entry.get("bound") not in ("compute", "memory", "transfer",
                                  "overhead", "unknown"):
        problems.append(f"kernel {name!r}: unknown bound "
                        f"{entry.get('bound')!r}")
    for key in ("seconds", "flops", "bytes", "pct_peak_compute",
                "pct_peak_memory"):
        if not isinstance(entry.get(key), (int, float)):
            problems.append(f"kernel {name!r}: {key} missing or non-numeric")
    for key in ("pct_peak_compute", "pct_peak_memory"):
        value = entry.get(key)
        if isinstance(value, (int, float)) and value < 0:
            problems.append(f"kernel {name!r}: {key} is negative")
    return problems


def _validate_diff(payload: dict) -> List[str]:
    problems: List[str] = []
    for key in ("base", "current"):
        if not isinstance(payload.get(key), dict):
            problems.append(f"missing run summary {key!r}")
    if not isinstance(payload.get("delta_total_seconds"), (int, float)):
        problems.append("delta_total_seconds missing or non-numeric")
    if not isinstance(payload.get("identical"), bool):
        problems.append("identical flag missing")
    for axis in _DELTA_AXES:
        axes = payload.get(axis)
        if not isinstance(axes, dict):
            problems.append(f"missing delta axis {axis!r}")
            continue
        for bucket in _DELTA_BUCKETS:
            entries = axes.get(bucket)
            if not isinstance(entries, list):
                problems.append(f"{axis}.{bucket} must be a list")
                continue
            for entry in entries:
                if not isinstance(entry, dict) \
                        or not isinstance(entry.get("key"), str) \
                        or not isinstance(entry.get("delta"), (int, float)):
                    problems.append(f"{axis}.{bucket} entry malformed")
                    break
    return problems
