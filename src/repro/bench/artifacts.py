"""Versioned ``BENCH_<area>.json`` perf-trajectory artifacts.

One artifact records one sweep area (``kernels``, ``training`` or
``serving``) as a
list of *cells* — one point of the kernel × framework × logical-scale ×
fastpath matrix — each carrying seeded-repeat statistics for virtual
time, wall time, and energy.  The committed copies at the repo root are
the perf baseline every future PR is gated against (``repro bench
gate``), so the format is schema-versioned and validated the same way
the telemetry bundle is (:mod:`repro.telemetry.manifest`).

Writers are atomic (temp file + ``os.replace``): an interrupted sweep
never leaves a truncated-but-parseable baseline behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.repeats import RepeatedStats

SWEEP_SCHEMA = "repro.bench.sweep/1"
SWEEP_AREAS = ("kernels", "training", "serving")
CELL_METRICS = ("virtual_s", "wall_s", "energy_j")
# Wall-clock is recorded for the trajectory but not gated by default:
# shared CI runners make it noisy, while virtual time and energy are
# fully deterministic functions of the seeded simulation.
GATED_METRICS = ("virtual_s", "energy_j")

_CELL_PARAM_KEYS = {
    "driver": str,
    "framework": str,
    "kernel": str,
    "dataset": str,
    "scale": (int, float),
    "fastpath": bool,
}


def artifact_path(root: Union[str, Path], area: str) -> Path:
    """Canonical location of one area's baseline: ``<root>/BENCH_<area>.json``."""
    return Path(root) / f"BENCH_{area}.json"


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A crash mid-write leaves either the old file or nothing — never a
    truncated result that a later reader would mistake for real data.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def stats_payload(stats: RepeatedStats) -> dict:
    """Serialize one metric's repeated-run statistics."""
    return {
        "mean": float(stats.mean),
        "std": float(stats.std),
        "cov": float(stats.cov),
        "n": stats.n,
        "values": [float(v) for v in stats.values],
    }


def build_sweep_artifact(area: str, cells: List[dict],
                         seeds: Sequence[int],
                         provenance: Optional[dict] = None) -> dict:
    """Assemble one area's artifact from already-measured cells."""
    if area not in SWEEP_AREAS:
        raise ValueError(f"unknown sweep area {area!r}; expected {SWEEP_AREAS}")
    return {
        "schema": SWEEP_SCHEMA,
        "area": area,
        "seeds": [int(s) for s in seeds],
        "provenance": dict(provenance or {}),
        "cells": list(cells),
    }


def write_sweep_artifact(path: Union[str, Path], artifact: dict) -> Path:
    problems = validate_sweep_artifact(artifact)
    if problems:
        raise ValueError(
            f"refusing to write invalid sweep artifact: {problems[0]}"
            + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else "")
        )
    return atomic_write_text(
        path, json.dumps(artifact, indent=2, sort_keys=True) + "\n")


def load_sweep_artifact(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def validate_sweep_artifact(artifact: object) -> List[str]:
    """Schema-gate one artifact; returns human-readable problems."""
    problems: List[str] = []
    if not isinstance(artifact, dict):
        return ["artifact is not a JSON object"]
    if artifact.get("schema") != SWEEP_SCHEMA:
        problems.append(f"unknown schema {artifact.get('schema')!r} "
                        f"(expected {SWEEP_SCHEMA})")
    if artifact.get("area") not in SWEEP_AREAS:
        problems.append(f"unknown area {artifact.get('area')!r}")
    seeds = artifact.get("seeds")
    if not isinstance(seeds, list) or not seeds \
            or not all(isinstance(s, int) for s in seeds):
        problems.append("seeds must be a non-empty list of integers")
    if not isinstance(artifact.get("provenance"), dict):
        problems.append("provenance must be an object")
    cells = artifact.get("cells")
    if not isinstance(cells, list) or not cells:
        return problems + ["cells must be a non-empty list"]
    seen_ids = set()
    for index, cell in enumerate(cells):
        for problem in _validate_cell(cell, seeds):
            problems.append(f"cell #{index}: {problem}")
        cell_id = cell.get("id") if isinstance(cell, dict) else None
        if cell_id in seen_ids:
            problems.append(f"duplicate cell id {cell_id!r}")
        seen_ids.add(cell_id)
    return problems


def _validate_cell(cell: object, seeds: object) -> List[str]:
    if not isinstance(cell, dict):
        return ["cell is not an object"]
    problems = []
    if not isinstance(cell.get("id"), str) or not cell.get("id"):
        problems.append("missing id")
    params = cell.get("params")
    if not isinstance(params, dict):
        problems.append("params must be an object")
    else:
        for key, types in _CELL_PARAM_KEYS.items():
            if key not in params:
                problems.append(f"params missing {key!r}")
            elif not isinstance(params[key], types):
                problems.append(f"params.{key} has wrong type "
                                f"{type(params[key]).__name__}")
    metrics = cell.get("metrics")
    if not isinstance(metrics, dict):
        return problems + ["metrics must be an object"]
    for name in CELL_METRICS:
        stats = metrics.get(name)
        if not isinstance(stats, dict):
            problems.append(f"metric {name!r} missing")
            continue
        for key in ("mean", "std", "cov"):
            if not isinstance(stats.get(key), (int, float)):
                problems.append(f"metric {name!r}.{key} missing or non-numeric")
        values = stats.get("values")
        if not isinstance(values, list) \
                or not all(isinstance(v, (int, float)) for v in values):
            problems.append(f"metric {name!r}.values must be a list of numbers")
        elif isinstance(seeds, list) and len(values) != len(seeds):
            problems.append(f"metric {name!r} has {len(values)} values "
                            f"for {len(seeds)} seeds")
        if stats.get("n") != (len(values) if isinstance(values, list) else None):
            problems.append(f"metric {name!r}.n disagrees with values")
    attribution = cell.get("attribution")
    if attribution is not None:  # optional: absent in pre-PR-8 baselines
        if not isinstance(attribution, dict):
            problems.append("attribution must be an object")
        else:
            for axis in ("phases", "kernel_families"):
                section = attribution.get(axis)
                if section is None:
                    continue
                if not isinstance(section, dict) or not all(
                        isinstance(v, (int, float)) for v in section.values()):
                    problems.append(f"attribution.{axis} must map names "
                                    "to numbers")
    return problems


def validate_baseline_dir(root: Union[str, Path],
                          areas: Sequence[str] = SWEEP_AREAS) -> Dict[str, List[str]]:
    """Validate every committed ``BENCH_<area>.json`` under ``root``."""
    report: Dict[str, List[str]] = {}
    for area in areas:
        path = artifact_path(root, area)
        if not path.exists():
            report[area] = [f"{path.name}: missing"]
            continue
        try:
            artifact = load_sweep_artifact(path)
        except (ValueError, json.JSONDecodeError) as exc:
            report[area] = [f"{path.name}: unparseable ({exc})"]
            continue
        problems = validate_sweep_artifact(artifact)
        if isinstance(artifact, dict) and artifact.get("area") not in (None, area):
            problems.append(f"area {artifact.get('area')!r} does not match "
                            f"file name {path.name}")
        report[area] = [f"{path.name}: {p}" for p in problems]
    return report
