"""Calibration invariants: the profiles must encode the paper's claims."""

import pytest

from repro.frameworks.profiles import DGLITE_PROFILE, PROFILES, PYGLITE_PROFILE
from repro.tensor.context import CostProfile


class TestProfileRegistry:
    def test_both_frameworks_registered(self):
        assert set(PROFILES) == {"dglite", "pyglite"}

    def test_sampler_cost_lookup(self):
        costs = DGLITE_PROFILE.sampler_costs("neighbor")
        assert costs.per_item > 0
        with pytest.raises(KeyError):
            DGLITE_PROFILE.sampler_costs("nonexistent")


class TestObservation1Loader:
    """PyG's data loader is lighter than DGL's graph-centric loader."""

    def test_pyg_cheaper_per_node_and_edge(self):
        assert PYGLITE_PROFILE.loader_per_node < DGLITE_PROFILE.loader_per_node
        assert PYGLITE_PROFILE.loader_per_edge < DGLITE_PROFILE.loader_per_edge


class TestObservation2Samplers:
    """DGL samplers are native (C++/OpenMP); PyG's are Python."""

    @pytest.mark.parametrize("kind", ["neighbor", "cluster", "saint_rw"])
    def test_dgl_per_item_cheaper(self, kind):
        assert (DGLITE_PROFILE.sampler_costs(kind).per_item
                < PYGLITE_PROFILE.sampler_costs(kind).per_item)

    def test_saint_gap_smaller_than_neighbor_gap(self):
        """'The performance gap is relatively small for GraphSAINT sampler.'"""
        neighbor_ratio = (PYGLITE_PROFILE.sampler_costs("neighbor").per_item
                          / DGLITE_PROFILE.sampler_costs("neighbor").per_item)
        saint_ratio = (PYGLITE_PROFILE.sampler_costs("saint_rw").per_item
                       / DGLITE_PROFILE.sampler_costs("saint_rw").per_item)
        assert saint_ratio < neighbor_ratio

    def test_only_pyg_requires_csc_conversion(self):
        assert PYGLITE_PROFILE.requires_csc
        assert not DGLITE_PROFILE.requires_csc
        assert PYGLITE_PROFILE.csc_convert_per_edge > 0


class TestObservation3Kernels:
    """DGL's CPU message-passing kernels beat PyG's; GEMM ties (BLAS)."""

    @pytest.mark.parametrize("family", ["spmm", "sddmm", "scatter"])
    def test_dgl_cpu_sparse_kernels_faster(self, family):
        dgl_eff = DGLITE_PROFILE.cost.eff(family, "cpu")
        pyg_eff = PYGLITE_PROFILE.cost.eff(family, "cpu")
        assert dgl_eff[0] > pyg_eff[0]

    def test_gemm_is_shared_blas(self):
        assert (DGLITE_PROFILE.cost.eff("gemm", "cpu")
                == PYGLITE_PROFILE.cost.eff("gemm", "cpu"))

    def test_dgl_dispatch_overhead_higher(self):
        """Why PyG wins on small graphs on GPU."""
        assert (DGLITE_PROFILE.cost.dispatch_overhead
                > PYGLITE_PROFILE.cost.dispatch_overhead)

    def test_gpu_kernels_more_efficient_than_cpu(self):
        for profile in (DGLITE_PROFILE, PYGLITE_PROFILE):
            for family in ("spmm", "sddmm", "gemm"):
                assert (profile.cost.eff(family, "gpu")[0]
                        > profile.cost.eff(family, "cpu")[0])

    def test_fused_layer_sets(self):
        paper_eight = {"gcn", "gcn2", "cheb", "sage", "gat", "gatv2", "tag", "sg"}
        assert paper_eight <= DGLITE_PROFILE.fused_convs
        # PyG lacks fused support exactly for Cheb/GAT/GATv2 (and the
        # extension GIN layer, whose PyG default is MessagePassing).
        assert paper_eight - PYGLITE_PROFILE.fused_convs == {"cheb", "gat", "gatv2"}
        assert "gin" not in PYGLITE_PROFILE.fused_convs


class TestGpuSampling:
    """GPU/UVA sampling exists only in DGL (GraphSAGE-only at model level)."""

    def test_dgl_supports_gpu_and_uva(self):
        assert DGLITE_PROFILE.supports_gpu_sampling
        assert DGLITE_PROFILE.supports_uva_sampling
        assert DGLITE_PROFILE.gpu_sampler_per_item > 0

    def test_pyg_has_neither(self):
        assert not PYGLITE_PROFILE.supports_gpu_sampling
        assert not PYGLITE_PROFILE.supports_uva_sampling

    def test_gpu_sampler_faster_per_item_than_cpu(self):
        assert (DGLITE_PROFILE.gpu_sampler_per_item
                < DGLITE_PROFILE.sampler_costs("neighbor").per_item)

    def test_prefetch_is_dgl_only(self):
        assert DGLITE_PROFILE.supports_prefetch
        assert not PYGLITE_PROFILE.supports_prefetch


class TestCostProfile:
    def test_default_eff_fallback(self):
        profile = CostProfile(name="x", default_eff=(0.3, 0.4))
        assert profile.eff("unknown", "cpu") == (0.3, 0.4)

    def test_overhead_composition(self):
        profile = CostProfile(name="x", dispatch_overhead=1e-6,
                              op_overhead={("gemm", "cpu"): 2e-6})
        assert profile.overhead("gemm", "cpu") == pytest.approx(3e-6)
        assert profile.overhead("spmm", "cpu") == pytest.approx(1e-6)
