"""Collective communication cost models (ring all-reduce)."""

from __future__ import annotations

from repro.distributed.machine import MultiGpuMachine
from repro.errors import DeviceError


def ring_allreduce_time(machine: MultiGpuMachine, nbytes: float) -> float:
    """Duration of a bandwidth-optimal ring all-reduce of ``nbytes``.

    Classic model: 2(k-1)/k chunks of the payload traverse the ring, each
    of the 2(k-1) steps paying the link latency.
    """
    k = machine.num_gpus
    if k < 2:
        return 0.0
    link = machine.inter_gpu
    steps = 2 * (k - 1)
    return steps * link.latency + (2 * (k - 1) / k) * nbytes / link.bandwidth


def ring_allreduce(machine: MultiGpuMachine, nbytes: float,
                   tag: str = "allreduce") -> float:
    """Run (charge) one all-reduce: every GPU busy for the full duration."""
    if nbytes < 0:
        raise DeviceError("negative all-reduce payload")
    seconds = ring_allreduce_time(machine, nbytes)
    if seconds <= 0:
        return 0.0
    machine.clock.occupy_parallel(
        {gpu.name: seconds for gpu in machine.gpus}, tag=tag
    )
    return seconds
