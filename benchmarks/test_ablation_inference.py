"""Ablation: layer-wise inference cost (excluded from the paper's scope).

Quantifies what Section 4.1 set aside: the cost of inferring over the full
graph with the trained GraphSAGE, CPU vs GPU, both frameworks.  Unlike
training, inference has no sampling phase — on GPU its bottleneck is the
per-layer feature streaming over PCIe.
"""

from conftest import emit

from repro.bench import format_series
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.graphsage import build_graphsage
from repro.models.inference import layerwise_inference

DATASETS = ("ppi", "flickr", "reddit")


def _run(fw_name: str, dataset: str, device: str):
    machine = paper_testbed()
    fw = get_framework(fw_name)
    fgraph = fw.load(dataset, machine)
    net = build_graphsage(fw, fgraph, dropout=0.0, seed=0)
    if device == "gpu":
        net.to(machine.gpu, link=machine.pcie)
    return layerwise_inference(fw, fgraph, net, device=device)


def test_ablation_inference(once):
    def run():
        return {
            f"{fw}/{device}": {ds: _run(fw, ds, device) for ds in DATASETS}
            for fw in ("dglite", "pyglite")
            for device in ("cpu", "gpu")
        }

    results = once(run)
    series = {
        key: {ds: r.total_time for ds, r in row.items()}
        for key, row in results.items()
    }
    emit("ablation_inference",
         format_series("Ablation: layer-wise full-graph inference (GraphSAGE)",
                       series, unit="s"))

    # DGL's fused CPU kernels win inference like they win training.
    for ds in DATASETS:
        assert (results["dglite/cpu"][ds].total_time
                < results["pyglite/cpu"][ds].total_time), ds

    # GPU inference on the big graph is movement-bound, not compute-bound.
    reddit_gpu = results["dglite/gpu"]["reddit"]
    assert (reddit_gpu.phases["data_movement"]
            > reddit_gpu.phases["training"])

    # GPU still beats CPU end-to-end on the big dense graph.
    assert (results["dglite/gpu"]["reddit"].total_time
            < results["dglite/cpu"]["reddit"].total_time)
