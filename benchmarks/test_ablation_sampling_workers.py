"""Ablation: parallel sampling workers (DGL/PyG dataloader num_workers).

Observation 4 says sampling needs optimization; both real frameworks ship
worker pools for exactly that.  This bench sweeps worker counts and shows
(a) sampling time collapsing sublinearly and (b) the total approaching the
compute+movement floor — the fix for the scaling wall the multi-GPU
ablation exposes.
"""

from conftest import emit

from repro.bench import format_series, run_training_experiment

WORKERS = (0, 2, 4, 8)
RUN = dict(epochs=5, representative_batches=2, placement="cpugpu")
DATASET = "reddit"


def test_ablation_sampling_workers(once):
    def run():
        out = {}
        for fw in ("dglite", "pyglite"):
            for w in WORKERS:
                out[(fw, w)] = run_training_experiment(
                    fw, DATASET, "graphsage", num_workers=w, **RUN)
        return out

    results = once(run)
    series = {
        f"{fw}/workers-{w}": {
            "sampling_s": r.phases.get("sampling", 0.0),
            "total_s": r.total_time,
            "speedup": results[(fw, 0)].total_time / r.total_time,
        }
        for (fw, w), r in results.items()
    }
    emit("ablation_sampling_workers",
         format_series(f"Ablation: sampler worker pool on {DATASET} "
                       "(GraphSAGE, CPUGPU)", series, unit="mixed",
                       precision=2))

    for fw in ("dglite", "pyglite"):
        sampling = [results[(fw, w)].phases["sampling"] for w in WORKERS]
        # monotone improvement with workers
        assert all(a >= b * 0.999 for a, b in zip(sampling, sampling[1:])), fw
        # sublinear: 8 workers buy less than 8x
        assert sampling[0] / sampling[-1] < 8.0, fw
        # and the total improves accordingly
        assert (results[(fw, 8)].total_time
                < results[(fw, 0)].total_time), fw

    # The worker pool matters most where sampling dominates: PyG gains a
    # larger total-time factor than DGL.
    pyg_gain = (results[("pyglite", 0)].total_time
                / results[("pyglite", 8)].total_time)
    dgl_gain = (results[("dglite", 0)].total_time
                / results[("dglite", 8)].total_time)
    assert pyg_gain > dgl_gain
