"""Tests for the GraphSAINT random-walk sampler algorithm."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.sampling.randomwalk import RandomWalkSampler


class TestWalk:
    def test_walk_shape(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, walk_length=3, seed=0)
        roots = np.arange(10)
        path = sampler.walk(roots)
        assert path.shape == (10, 4)
        assert np.array_equal(path[:, 0], roots)

    def test_walk_steps_follow_edges(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, walk_length=2, seed=0)
        path = sampler.walk(np.arange(20))
        for row in path:
            for a, b in zip(row[:-1], row[1:]):
                if a != b:  # stuck walkers stay in place
                    assert b in tiny_graph.adj.neighbors(int(a))

    def test_stuck_walker_stays(self):
        """A degree-0 node cannot move; the walk must not crash."""
        from repro.graph.formats import AdjacencyCOO
        from repro.graph.graph import Graph, GraphStats, Split
        adj = AdjacencyCOO(3, np.array([0]), np.array([1])).to_csr()
        stats = GraphStats("iso", "d", 3, 1, 2, 2, False, Split(0.6, 0.2, 0.2))
        graph = Graph(adj, np.zeros((3, 2), dtype=np.float32),
                      np.zeros(3, dtype=np.int64),
                      np.array([True, False, False]),
                      np.array([False, True, False]),
                      np.array([False, False, True]), stats)
        sampler = RandomWalkSampler(graph, num_roots=1, walk_length=2, seed=0)
        path = sampler.walk(np.array([2]))  # node 2 has no out-edges
        assert np.all(path == 2)


class TestSample:
    def test_roots_scaled_down(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, num_roots=3000, seed=0)
        expected = max(2, round(3000 / tiny_graph.node_scale))
        assert sampler.actual_num_roots == expected

    def test_subgraph_nodes_unique_and_contain_walk(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, seed=0)
        batch = sampler.sample()
        assert len(batch.nodes) == len(np.unique(batch.nodes))

    def test_subgraph_edges_are_induced(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, seed=0)
        batch = sampler.sample()
        for s, d in zip(batch.src[:50], batch.dst[:50]):
            global_s = batch.nodes[s]
            global_d = batch.nodes[d]
            assert global_d in tiny_graph.adj.neighbors(int(global_s))

    def test_explicit_roots(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, walk_length=0, seed=0)
        roots = np.array([5, 9, 13])
        batch = sampler.sample(roots)
        assert np.array_equal(np.sort(batch.nodes), np.sort(roots))

    def test_empty_roots_rejected(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, seed=0)
        with pytest.raises(SamplerError):
            sampler.sample(np.array([], dtype=np.int64))

    def test_invalid_config_rejected(self, tiny_graph):
        with pytest.raises(SamplerError):
            RandomWalkSampler(tiny_graph, num_roots=0)
        with pytest.raises(SamplerError):
            RandomWalkSampler(tiny_graph, walk_length=-1)


class TestEpoch:
    def test_num_batches_covers_graph(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, seed=0)
        batches = sampler.num_batches()
        expected_nodes = min(tiny_graph.num_nodes,
                             sampler.actual_num_roots * 3)
        assert batches == int(np.ceil(tiny_graph.num_nodes / expected_nodes))

    def test_epoch_yields_num_batches(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, seed=0)
        assert len(list(sampler.epoch_batches())) == sampler.num_batches()

    def test_work_positive(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, seed=0)
        batch = sampler.sample()
        assert batch.work.items > 0
        assert batch.work.fetch_bytes > 0
