"""Device power meters modelled after Intel RAPL and NVIDIA NVML."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import Device
from repro.simtime import VirtualClock


@dataclass(frozen=True)
class PowerSample:
    """One instantaneous power reading."""

    time: float  # virtual seconds
    watts: float


def _busy_fraction(clock: VirtualClock, device: Device, start: float, end: float) -> float:
    span = end - start
    if span <= 0:
        return 0.0
    return min(1.0, clock.busy_time(device.name, start, end) / span)


def _energy_between(clock: VirtualClock, device: Device, start: float, end: float) -> float:
    """Exact integral of device power over [start, end) in joules."""
    span = max(0.0, end - start)
    spec = device.spec
    busy = clock.busy_time(device.name, start, end)
    return spec.idle_power * span + (spec.busy_power - spec.idle_power) * min(busy, span)


class RaplMeter:
    """CPU energy meter in the style of Intel RAPL.

    RAPL exposes a cumulative energy counter; tools read it twice and
    divide by wall time to get average power.  We reproduce exactly that
    interface against the virtual clock.
    """

    def __init__(self, clock: VirtualClock, cpu: Device) -> None:
        if cpu.kind != "cpu":
            raise ValueError("RaplMeter must be attached to a CPU device")
        self.clock = clock
        self.cpu = cpu
        self._origin = clock.now

    def energy_counter(self) -> float:
        """Cumulative joules since the meter was created (RAPL-style)."""
        return _energy_between(self.clock, self.cpu, self._origin, self.clock.now)

    def energy_between(self, start: float, end: float) -> float:
        return _energy_between(self.clock, self.cpu, start, end)

    def average_power(self, start: float, end: float) -> float:
        span = end - start
        if span <= 0:
            return self.cpu.spec.idle_power
        return self.energy_between(start, end) / span


class NvmlMeter:
    """GPU power meter in the style of pynvml.

    NVML exposes instantaneous board power; tools sample it periodically
    and integrate (power x dt).  ``instant_power`` reports power averaged
    over the trailing sampling window, matching how the driver's internal
    averaging smooths kernel-level spikes.
    """

    def __init__(self, clock: VirtualClock, gpu: Device, window: float = 0.1) -> None:
        if gpu.kind != "gpu":
            raise ValueError("NvmlMeter must be attached to a GPU device")
        if window <= 0:
            raise ValueError("window must be positive")
        self.clock = clock
        self.gpu = gpu
        self.window = window

    def instant_power(self, at: float | None = None) -> float:
        """Board power (watts) averaged over the trailing window."""
        end = self.clock.now if at is None else at
        start = max(0.0, end - self.window)
        spec = self.gpu.spec
        if end <= start:
            return spec.idle_power
        frac = _busy_fraction(self.clock, self.gpu, start, end)
        return spec.idle_power + frac * (spec.busy_power - spec.idle_power)

    def sample(self) -> PowerSample:
        return PowerSample(self.clock.now, self.instant_power())

    def energy_between(self, start: float, end: float) -> float:
        """Exact energy integral (reference value for tests)."""
        return _energy_between(self.clock, self.gpu, start, end)
