"""PPI: protein-protein interaction graphs (multi-label, 121 classes).

Table 1: 14,755 nodes / 225,270 edges / 50 features / 121 classes,
split 0.66 / 0.12 / 0.22.  PPI is the smallest graph in the study and the
one case where PyG's GPU path beats DGL (Observations 3, 5) thanks to its
lower framework overhead.  Bundled by both frameworks' dataset modules.
"""

from repro.datasets.base import DatasetSpec
from repro.graph.graph import Split

SPEC = DatasetSpec(
    name="ppi",
    description="Protein-Protein Interactions",
    logical_num_nodes=14_755,
    logical_num_edges=225_270,
    num_features=50,
    num_classes=121,
    multilabel=True,
    split=Split(0.66, 0.12, 0.22),
    actual_num_nodes=1_800,
    actual_num_edges=27_000,
    num_communities=24,
    intra_prob=0.85,
    degree_exponent=2.3,
    in_dgl=True,
    in_pyg=True,
    seed=11,
)
