"""Declarative fault plans: what fails, where, when, and how to recover.

A :class:`FaultPlan` is a pure data description — parsed from JSON on the
CLI (``repro train --faults plan.json``) or built in tests — that the
:class:`~repro.resilience.injector.FaultInjector` replays against the
four hot-path seams of the simulated stack:

==================  ====================================================
site                where it arms
==================  ====================================================
``storage.read``    :meth:`repro.hardware.machine.Machine.read_storage`
                    (the charged dataset load; torn writes surface the
                    same way a corrupted ``arrays.npz`` does)
``transfer.h2d``    :meth:`repro.hardware.interconnect.Interconnect.h2d`
                    (every PCIe batch copy)
``sampler.worker``  the ``num_workers`` sampling path of
                    :class:`repro.models.trainer.MiniBatchTrainer`
``replica``         :class:`repro.distributed.trainer.DataParallelTrainer`
                    global steps (dead or straggling replicas)
==================  ====================================================

Occurrences are counted per site starting at 1, in virtual-clock order,
so a plan is exactly as deterministic as the run it attacks: the same
seed and schedule produce byte-identical telemetry bundles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import FaultPlanError

#: The four injectable seams, in pipeline order.
SITES = ("storage.read", "transfer.h2d", "sampler.worker", "replica")

#: Fault kinds each site understands.
KINDS: Dict[str, Tuple[str, ...]] = {
    "storage.read": ("error", "torn_write", "stall"),
    "transfer.h2d": ("error", "stall"),
    "sampler.worker": ("crash",),
    "replica": ("dead", "straggler"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``count`` consecutive occurrences at a site.

    ``severity`` is the fraction of the operation's cost wasted before
    the failure is noticed (a torn write always wastes the full cost);
    ``stall_seconds`` is the extra latency of a ``stall`` fault;
    ``slow_factor`` multiplies a straggling replica's compute time;
    ``rank`` picks the victim replica (defaults to the highest live
    non-zero rank).
    """

    site: str
    kind: str
    at: int = 1
    count: int = 1
    severity: float = 0.5
    stall_seconds: float = 0.05
    slow_factor: float = 2.0
    rank: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.kind not in KINDS[self.site]:
            raise FaultPlanError(
                f"site {self.site!r} cannot fail with {self.kind!r}; "
                f"expected one of {KINDS[self.site]}"
            )
        if self.at < 1 or self.count < 1:
            raise FaultPlanError("'at' and 'count' must be >= 1")
        if not (0.0 <= self.severity <= 1.0):
            raise FaultPlanError("severity must be in [0, 1]")
        if self.stall_seconds < 0:
            raise FaultPlanError("stall_seconds must be >= 0")
        if self.slow_factor < 1.0:
            raise FaultPlanError("slow_factor must be >= 1")
        if self.rank is not None and self.rank < 1:
            raise FaultPlanError("replica rank must be >= 1 (rank 0 hosts "
                                 "the optimizer and cannot be excluded)")

    def covers(self, occurrence: int) -> bool:
        """Does this spec fire on the ``occurrence``-th arm of its site?"""
        return self.at <= occurrence < self.at + self.count


@dataclass(frozen=True)
class RecoveryPolicy:
    """Per-site recovery knobs.

    Bounded retry with exponential backoff: attempt ``1 + max_retries``
    times, sleeping ``backoff * factor**(n-1)`` virtual seconds before
    the n-th retry (plus seeded jitter of ±``jitter`` fraction).  Sites
    with a structural fallback (worker pool → inline sampling) degrade
    instead of failing when ``degrade`` is set.
    """

    max_retries: int = 3
    backoff: float = 0.05
    factor: float = 2.0
    jitter: float = 0.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultPlanError("max_retries must be >= 0")
        if self.backoff < 0:
            raise FaultPlanError("backoff must be >= 0")
        if self.factor < 1.0:
            raise FaultPlanError("backoff factor must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise FaultPlanError("jitter must be in [0, 1)")


DEFAULT_POLICY = RecoveryPolicy()


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of faults plus per-site recovery policies."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()
    policies: Dict[str, RecoveryPolicy] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for site in self.policies:
            if site not in SITES:
                raise FaultPlanError(
                    f"policy for unknown site {site!r}; expected one of {SITES}"
                )

    def policy(self, site: str) -> RecoveryPolicy:
        return self.policies.get(site, DEFAULT_POLICY)

    def describe(self) -> str:
        """Deterministic one-line summary (safe for run manifests)."""
        sites = sorted({f.site for f in self.faults})
        return f"seed={self.seed} faults={len(self.faults)} sites={','.join(sites)}"

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Dict) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        unknown = set(raw) - {"seed", "faults", "policies"}
        if unknown:
            raise FaultPlanError(f"unknown fault-plan keys {sorted(unknown)}")
        try:
            faults = tuple(FaultSpec(**spec) for spec in raw.get("faults", ()))
            policies = {site: RecoveryPolicy(**spec)
                        for site, spec in raw.get("policies", {}).items()}
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc
        return cls(seed=int(raw.get("seed", 0)), faults=faults,
                   policies=policies)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultPlan":
        path = Path(path)
        if not path.exists():
            raise FaultPlanError(f"no fault plan at {path}")
        return cls.from_json(path.read_text())

    def to_json(self) -> str:
        def spec_dict(spec: FaultSpec) -> Dict:
            out = {"site": spec.site, "kind": spec.kind, "at": spec.at,
                   "count": spec.count, "severity": spec.severity,
                   "stall_seconds": spec.stall_seconds,
                   "slow_factor": spec.slow_factor}
            if spec.rank is not None:
                out["rank"] = spec.rank
            return out

        return json.dumps({
            "seed": self.seed,
            "faults": [spec_dict(f) for f in self.faults],
            "policies": {site: vars(p) for site, p in sorted(self.policies.items())},
        }, indent=2)
