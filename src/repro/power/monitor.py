"""CodeCarbon-style energy monitor over the virtual clock.

The paper runs CodeCarbon with a 0.1 s sampling interval (instead of the
15 s default).  This monitor reproduces the tool's measurement structure:
it registers a clock listener, takes a reading every ``interval`` virtual
seconds, accumulates CPU energy from the RAPL counter delta and GPU energy
from (NVML instant power x interval), and reports totals and averages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.hardware.machine import Machine
from repro.power.meter import NvmlMeter, PowerSample, RaplMeter


@dataclass(frozen=True)
class EnergyReport:
    """Measured energy/power for one monitored window."""

    duration: float  # seconds
    cpu_energy: float  # joules
    gpu_energy: float  # joules
    samples: int
    cpu_power_trace: tuple = ()
    gpu_power_trace: tuple = ()

    @property
    def total_energy(self) -> float:
        return self.cpu_energy + self.gpu_energy

    @property
    def avg_cpu_power(self) -> float:
        return self.cpu_energy / self.duration if self.duration > 0 else 0.0

    @property
    def avg_gpu_power(self) -> float:
        return self.gpu_energy / self.duration if self.duration > 0 else 0.0

    @property
    def avg_power(self) -> float:
        return self.total_energy / self.duration if self.duration > 0 else 0.0

    @property
    def total_energy_wh(self) -> float:
        return self.total_energy / 3600.0

    @property
    def peak_power(self) -> float:
        """Peak combined draw across aligned CPU+GPU samples (watts)."""
        if not self.cpu_power_trace and not self.gpu_power_trace:
            return 0.0
        combined = {}
        for sample in self.cpu_power_trace:
            combined[sample.time] = combined.get(sample.time, 0.0) + sample.watts
        for sample in self.gpu_power_trace:
            combined[sample.time] = combined.get(sample.time, 0.0) + sample.watts
        return max(combined.values())

    def cpu_power_stats(self) -> dict:
        """avg/p50/p95/peak of the CPU rail (watts)."""
        return _power_stats(self.cpu_power_trace)

    def gpu_power_stats(self) -> dict:
        """avg/p50/p95/peak of the GPU rail (watts)."""
        return _power_stats(self.gpu_power_trace)


def _power_stats(trace: tuple) -> dict:
    """Summary statistics over one rail's power samples.

    Percentiles use the nearest-rank method on the sorted sample power
    values, so the result is always an observed sample (deterministic,
    no interpolation).
    """
    if not trace:
        return {"avg": 0.0, "p50": 0.0, "p95": 0.0, "peak": 0.0}
    watts = sorted(sample.watts for sample in trace)
    n = len(watts)

    def rank(q: float) -> float:
        return watts[min(n - 1, max(0, math.ceil(q * n) - 1))]

    return {
        "avg": sum(watts) / n,
        "p50": rank(0.50),
        "p95": rank(0.95),
        "peak": watts[-1],
    }


class EnergyMonitor:
    """Samples device power every ``interval`` virtual seconds.

    Usage mirrors CodeCarbon's tracker::

        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        ...  # run the workload (advances the virtual clock)
        report = monitor.stop()
    """

    def __init__(self, machine: Machine, interval: float = 0.1) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.machine = machine
        self.interval = interval
        self.rapl = RaplMeter(machine.clock, machine.cpu)
        self.nvml: Optional[NvmlMeter] = (
            NvmlMeter(machine.clock, machine.gpu, window=interval)
            if machine.gpu is not None
            else None
        )
        self._running = False
        self._start_time = 0.0
        self._last_sample_time = 0.0
        self._last_rapl = 0.0
        self._cpu_energy = 0.0
        self._gpu_energy = 0.0
        self._samples = 0
        self._cpu_trace: List[PowerSample] = []
        self._gpu_trace: List[PowerSample] = []

    def start(self) -> None:
        if self._running:
            raise RuntimeError("EnergyMonitor already running")
        self._running = True
        self._start_time = self.machine.clock.now
        self._last_sample_time = self._start_time
        self._last_rapl = self.rapl.energy_counter()
        self._cpu_energy = 0.0
        self._gpu_energy = 0.0
        self._samples = 0
        self._cpu_trace = []
        self._gpu_trace = []
        self.machine.clock.add_listener(self._on_advance)

    def _take_sample(self, at: float) -> None:
        rapl_now = self.rapl.energy_between(self._start_time, at)
        delta_cpu = rapl_now - self._cpu_energy
        span = at - self._last_sample_time
        self._cpu_energy = rapl_now
        self._cpu_trace.append(PowerSample(at, delta_cpu / span if span > 0 else 0.0))
        if self.nvml is not None:
            gpu_watts = self.nvml.instant_power(at)
            self._gpu_energy += gpu_watts * span
            self._gpu_trace.append(PowerSample(at, gpu_watts))
        self._samples += 1
        self._last_sample_time = at

    def _on_advance(self, old_now: float, new_now: float) -> None:
        # Fire a sample at every interval boundary crossed by this advance.
        next_due = self._last_sample_time + self.interval
        while next_due <= new_now:
            self._take_sample(next_due)
            next_due = self._last_sample_time + self.interval

    def stop(self) -> EnergyReport:
        if not self._running:
            raise RuntimeError("EnergyMonitor not running")
        self.machine.clock.remove_listener(self._on_advance)
        self._running = False
        end = self.machine.clock.now
        if end > self._last_sample_time:
            self._take_sample(end)
        duration = end - self._start_time
        return EnergyReport(
            duration=duration,
            cpu_energy=self._cpu_energy,
            gpu_energy=self._gpu_energy,
            samples=self._samples,
            cpu_power_trace=tuple(self._cpu_trace),
            gpu_power_trace=tuple(self._gpu_trace),
        )
