"""The six benchmark datasets (Table 1), built synthetically at reduced scale.

Each dataset module reproduces its real counterpart's *shape*: logical
node/edge counts from Table 1 (used by the cost and memory models), feature
dimensionality, class count, single- vs multi-label task, split fractions,
relative density, and community structure.  Actual array sizes are scaled
down to fit the test machine; the :class:`~repro.graph.GraphStats` record
carries the paper-scale numbers.
"""

from repro.datasets.base import DatasetSpec, build_dataset, clear_cache
from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_spec,
    get_dataset,
    list_datasets,
)
from repro.datasets.storage import load_graph, save_graph

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "build_dataset",
    "clear_cache",
    "dataset_spec",
    "get_dataset",
    "list_datasets",
    "load_graph",
    "save_graph",
]
