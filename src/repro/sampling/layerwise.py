"""Layer-wise importance samplers: FastGCN and LADIES.

The paper's background (Section 2.1) motivates the sampler landscape with
FastGCN (Chen et al. 2018) — independent per-layer node draws from a
precomputed importance distribution, which can produce isolated nodes —
and LADIES (Zou et al. 2019) — layer-*dependent* draws restricted to the
current frontier's neighborhood, which fixes sparsity "while it introduces
additional computational cost and non-negligible overhead in the sampling
process".  Both are implemented here so the ablation bench can quantify
that trade-off against GraphSAGE's node-wise sampler.

Both samplers are vectorized: the frontier's neighbor lists are gathered
in one :func:`~repro.sampling.relabel.gather_neighborhoods` pass, kept
edges come from a single ``np.isin`` membership test, and block
relabeling goes through :func:`~repro.sampling.relabel.block_locals` —
no per-frontier-node Python loops.

Both produce :class:`~repro.sampling.base.BlockSample` mini-batches
(bipartite blocks, output-side roots), directly consumable by
:class:`~repro.models.base.BlockNet`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SamplerError
from repro.graph.formats import INDEX_DTYPE
from repro.graph.graph import Graph
from repro.sampling.base import Block, BlockSample, SampleWork
from repro.sampling.relabel import block_locals, gather_neighborhoods


def _block_from_edges(src_global, dst_global, dst_nodes):
    """Assemble a Block with dst-prefix node layout from global edges."""
    src_nodes, src_local, dst_local = block_locals(
        src_global, dst_global, dst_nodes
    )
    return src_nodes, Block(src_nodes=src_nodes, dst_nodes=dst_nodes,
                            src=src_local, dst=dst_local)


def _frontier_edges_into(indptr, indices, frontier, keep_set):
    """Edges (src in ``keep_set``, dst in ``frontier``), one vectorized pass.

    Returns ``(src_global, dst_global, kept_per_frontier_node,
    edges_scanned)``.
    """
    neighbors, degrees, _ = gather_neighborhoods(indptr, indices, frontier)
    owners = np.repeat(frontier, degrees)
    kept = np.isin(neighbors, keep_set)
    segment = np.repeat(np.arange(frontier.size), degrees)
    kept_per_node = np.bincount(segment[kept], minlength=frontier.size)
    return neighbors[kept], owners[kept], kept_per_node, int(neighbors.size)


class FastGCNSampler:
    """FastGCN: per-layer independent draws from a global distribution.

    The importance distribution q(v) ~ deg(v)^2 is precomputed once.  For
    each layer, ``layer_size`` nodes are drawn independently of the
    frontier; edges into the frontier are kept.  Isolated frontier nodes
    (no sampled in-neighbors) are the method's known failure mode — the
    sampler exposes ``last_isolated_fraction`` so tests and benches can
    observe it.
    """

    def __init__(self, graph: Graph, layer_sizes=(400, 400),
                 batch_size: int = 512, seed: Optional[int] = None) -> None:
        if not layer_sizes:
            raise SamplerError("layer_sizes must be non-empty")
        self.graph = graph
        self.paper_layer_sizes = tuple(int(s) for s in layer_sizes)
        self.layer_sizes = tuple(
            max(2, int(round(s / graph.node_scale))) for s in layer_sizes
        )
        self.actual_batch_size = max(2, int(round(batch_size / graph.node_scale)))
        self.rng = np.random.default_rng(seed)
        # choice() needs f64 probabilities that sum to exactly 1.
        degrees = np.maximum(graph.adj.degrees(), 1).astype(np.float64)  # repro-lint: disable=DTYPE-DRIFT
        weights = degrees ** 2
        self._probs = weights / weights.sum()
        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices
        self.last_isolated_fraction = 0.0

    def sample(self, roots: np.ndarray) -> BlockSample:
        roots = np.asarray(roots, dtype=INDEX_DTYPE)
        if roots.size == 0:
            raise SamplerError("cannot sample an empty root batch")
        node_scale = self.graph.node_scale
        work = SampleWork()
        blocks: List[Block] = []
        frontier = roots
        isolated = 0
        total_frontier = 0
        for size in reversed(self.layer_sizes):
            size = min(size, self.graph.num_nodes)
            candidates = np.unique(
                self.rng.choice(self.graph.num_nodes, size=size, p=self._probs)
            )
            src_g, dst_g, kept_per_node, scanned = _frontier_edges_into(
                self._indptr, self._indices, frontier, candidates
            )
            work.items += scanned * node_scale  # membership tests
            isolated += int((kept_per_node == 0).sum())
            total_frontier += frontier.size
            src_nodes, block = _block_from_edges(src_g, dst_g, frontier)
            block.edge_scale = node_scale
            block.node_scale = node_scale
            blocks.append(block)
            frontier = src_nodes
            work.items += size * node_scale  # the independent draws
        blocks.reverse()
        self.last_isolated_fraction = isolated / max(1, total_frontier)
        input_nodes = blocks[0].src_nodes
        work.fetch_bytes = 4.0 * input_nodes.size * node_scale * self.graph.num_features
        return BlockSample(blocks=blocks, input_nodes=input_nodes,
                           output_nodes=roots, work=work)

    def num_batches(self, train_nodes: int) -> int:
        return max(1, int(np.ceil(train_nodes / self.actual_batch_size)))

    def epoch_batches(self, shuffle: bool = True):
        train = self.graph.train_nodes()
        if shuffle:
            train = self.rng.permutation(train)
        for start in range(0, train.size, self.actual_batch_size):
            roots = train[start:start + self.actual_batch_size]
            if roots.size:
                yield self.sample(roots)


class LadiesSampler:
    """LADIES: layer-dependent importance sampling.

    Like FastGCN, a fixed number of nodes is drawn per layer — but the
    distribution is recomputed *per batch, per layer* over the current
    frontier's in-neighborhood (q(v) ~ sum of squared normalized adjacency
    entries into the frontier).  That removes FastGCN's isolated nodes but
    costs an extra pass over the frontier's edges every layer — the
    "additional computational cost and non-negligible overhead" the paper
    cites, which the ablation bench quantifies.
    """

    def __init__(self, graph: Graph, layer_sizes=(400, 400),
                 batch_size: int = 512, seed: Optional[int] = None) -> None:
        if not layer_sizes:
            raise SamplerError("layer_sizes must be non-empty")
        self.graph = graph
        self.paper_layer_sizes = tuple(int(s) for s in layer_sizes)
        self.layer_sizes = tuple(
            max(2, int(round(s / graph.node_scale))) for s in layer_sizes
        )
        self.actual_batch_size = max(2, int(round(batch_size / graph.node_scale)))
        self.rng = np.random.default_rng(seed)
        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices

    def _frontier_distribution(self, frontier: np.ndarray):
        """Importance over the union of the frontier's in-neighborhoods."""
        all_neigh, _, _ = gather_neighborhoods(
            self._indptr, self._indices, frontier
        )
        if all_neigh.size == 0:
            return frontier, np.ones(frontier.size) / frontier.size, 0
        candidates, counts = np.unique(all_neigh, return_counts=True)
        # choice() needs f64 probabilities that sum to exactly 1.
        probs = counts.astype(np.float64)  # repro-lint: disable=DTYPE-DRIFT
        probs /= probs.sum()
        return candidates, probs, all_neigh.size

    def sample(self, roots: np.ndarray) -> BlockSample:
        roots = np.asarray(roots, dtype=INDEX_DTYPE)
        if roots.size == 0:
            raise SamplerError("cannot sample an empty root batch")
        node_scale = self.graph.node_scale
        work = SampleWork()
        blocks: List[Block] = []
        frontier = roots
        for size in reversed(self.layer_sizes):
            candidates, probs, edges_scanned = self._frontier_distribution(frontier)
            # The per-layer distribution pass is LADIES' extra overhead:
            # one full scan of the frontier's edges plus the draw itself.
            work.items += 2.0 * edges_scanned * node_scale + candidates.size * node_scale
            draw = min(size, candidates.size)
            chosen = np.unique(
                self.rng.choice(candidates, size=draw, p=probs, replace=True)
            )
            src_g, dst_g, _, scanned = _frontier_edges_into(
                self._indptr, self._indices, frontier, chosen
            )
            work.items += scanned * node_scale
            src_nodes, block = _block_from_edges(src_g, dst_g, frontier)
            block.edge_scale = node_scale
            block.node_scale = node_scale
            blocks.append(block)
            frontier = src_nodes
        blocks.reverse()
        input_nodes = blocks[0].src_nodes
        work.fetch_bytes = 4.0 * input_nodes.size * node_scale * self.graph.num_features
        return BlockSample(blocks=blocks, input_nodes=input_nodes,
                           output_nodes=roots, work=work)

    def num_batches(self, train_nodes: int) -> int:
        return max(1, int(np.ceil(train_nodes / self.actual_batch_size)))

    def epoch_batches(self, shuffle: bool = True):
        train = self.graph.train_nodes()
        if shuffle:
            train = self.rng.permutation(train)
        for start in range(0, train.size, self.actual_batch_size):
            roots = train[start:start + self.actual_batch_size]
            if roots.size:
                yield self.sample(roots)
