"""PyGLite — the PyG-modelled framework.

Design choices mirrored from PyG v2.0.4:

* tensor-first ``Data(edge_index)`` objects — cheap construction, fast
  data loader (Observation 1);
* ``MessagePassing`` lowering: a fused ``matmul`` (torch-sparse) path for
  GCNConv / GCN2Conv / SAGEConv / TAGConv / SGConv, and an *unfused*
  gather-and-scatter path for ChebConv / GATConv / GATv2Conv, which
  materializes per-edge message buffers and OOMs on large graphs
  (Observation 3);
* Python-rate samplers that require a one-time CSR -> CSC conversion
  (Observation 2); no GPU/UVA sampling support.  The same shared
  vectorized engine (:mod:`repro.sampling.relabel`) runs the draws for
  both frameworks; PyG's Python-rate penalty is charged via
  :data:`~repro.frameworks.profiles.PYGLITE_PROFILE` sampler costs so the
  modeled gap stays independent of our own implementation speed.
"""

from repro.frameworks.base import Framework
from repro.frameworks.profiles import PYGLITE_PROFILE
from repro.frameworks.pyglite import nn
from repro.telemetry import runtime as telemetry


class PyGLite(Framework):
    """The PyG-modelled framework instance."""

    name = "pyglite"
    profile = PYGLITE_PROFILE

    _CONVS = {
        "gcn": nn.GCNConv,
        "gcn2": nn.GCN2Conv,
        "cheb": nn.ChebConv,
        "sage": nn.SAGEConv,
        "gat": nn.GATConv,
        "gatv2": nn.GATv2Conv,
        "tag": nn.TAGConv,
        "sg": nn.SGConv,
        # Extension layers (beyond the paper's Figure 5 eight).
        "appnp": nn.APPNPConv,
        "gin": nn.GINConv,
        "graph": nn.GraphConv,
    }

    def conv(self, kind: str, in_features: int, out_features: int, **kwargs):
        """Instantiate one of the eight benchmarked conv layers."""
        if kind not in self._CONVS:
            raise KeyError(f"unknown conv kind {kind!r}")
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("framework.conv_built",
                             framework=self.name, kind=kind).inc()
        return self._CONVS[kind](in_features, out_features, **kwargs)


__all__ = ["PyGLite", "nn"]
