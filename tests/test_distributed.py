"""Tests for the multi-GPU data-parallel extension."""

import numpy as np
import pytest

from repro.distributed import (
    DataParallelTrainer,
    MultiGpuMachine,
    multi_gpu_testbed,
    ring_allreduce,
    ring_allreduce_time,
)
from repro.errors import BenchmarkError, DeviceError
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.graphsage import build_graphsage, graphsage_sampler


def _trainer(k=2, epochs=1, reps=2):
    machine = multi_gpu_testbed(k)
    fw = get_framework("dglite")
    fgraph = fw.load("ppi", machine, scale=0.3)
    sampler = graphsage_sampler(fw, fgraph, seed=0)
    net = build_graphsage(fw, fgraph, hidden=16, seed=0)
    return DataParallelTrainer(fw, fgraph, sampler, net, epochs=epochs,
                               representative_steps=reps)


class TestMultiGpuMachine:
    def test_gpu_zero_is_default_gpu(self):
        machine = multi_gpu_testbed(3)
        assert machine.gpus[0] is machine.gpu
        assert machine.num_gpus == 3

    def test_ranks_have_distinct_names(self):
        machine = multi_gpu_testbed(4)
        names = {gpu.name for gpu in machine.gpus}
        assert len(names) == 4

    def test_rank_lookup_bounds(self):
        machine = multi_gpu_testbed(2)
        assert machine.gpu_rank(1) is machine.gpus[1]
        with pytest.raises(DeviceError):
            machine.gpu_rank(2)

    def test_zero_gpus_rejected(self):
        with pytest.raises(DeviceError):
            MultiGpuMachine(num_gpus=0)

    def test_total_gpu_energy_counts_all_ranks(self):
        machine = multi_gpu_testbed(2)
        machine.clock.occupy(machine.gpus[1].name, 1.0)
        energy = machine.total_gpu_energy()
        spec = machine.gpus[1].spec
        # rank 1 busy 1 s, rank 0 idle 1 s
        assert energy == pytest.approx(spec.busy_power + spec.idle_power)


class TestRingAllreduce:
    def test_single_gpu_is_free(self):
        assert ring_allreduce_time(multi_gpu_testbed(1), 1e9) == 0.0

    def test_scales_with_payload(self):
        machine = multi_gpu_testbed(4)
        assert (ring_allreduce_time(machine, 2e9)
                > ring_allreduce_time(machine, 1e9))

    def test_bandwidth_term_matches_formula(self):
        machine = multi_gpu_testbed(4)
        link = machine.inter_gpu
        expected = 6 * link.latency + (2 * 3 / 4) * 1e9 / link.bandwidth
        assert ring_allreduce_time(machine, 1e9) == pytest.approx(expected)

    def test_charge_occupies_every_gpu(self):
        machine = multi_gpu_testbed(3)
        seconds = ring_allreduce(machine, 1e8)
        for gpu in machine.gpus:
            assert machine.clock.busy_time(gpu.name) == pytest.approx(seconds)
        assert machine.clock.now == pytest.approx(seconds)

    def test_negative_payload_rejected(self):
        with pytest.raises(DeviceError):
            ring_allreduce(multi_gpu_testbed(2), -1.0)


class TestOccupyParallel:
    def test_advances_by_max(self, machine):
        machine.clock.occupy_parallel({"a": 1.0, "b": 3.0})
        assert machine.clock.now == pytest.approx(3.0)
        assert machine.clock.busy_time("a") == pytest.approx(1.0)

    def test_backfill_records_without_advancing(self, machine):
        machine.clock.advance(5.0)
        machine.clock.occupy_parallel({"replica": 2.0}, backfill=True)
        assert machine.clock.now == pytest.approx(5.0)
        assert machine.clock.busy_time("replica", 3.0, 5.0) == pytest.approx(2.0)

    def test_backfill_overlap_rejected(self, machine):
        machine.clock.occupy("replica", 1.0)
        with pytest.raises(ValueError):
            machine.clock.occupy_parallel({"replica": 2.0}, backfill=True)

    def test_empty_or_zero_durations_noop(self, machine):
        machine.clock.occupy_parallel({})
        machine.clock.occupy_parallel({"a": 0.0})
        assert machine.clock.now == 0.0


class TestDataParallelTrainer:
    def test_requires_multi_gpu_machine(self):
        machine = paper_testbed()
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        sampler = graphsage_sampler(fw, fgraph, seed=0)
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
        with pytest.raises(BenchmarkError):
            DataParallelTrainer(fw, fgraph, sampler, net)

    def test_runs_and_reduces_loss(self):
        trainer = _trainer(k=2, epochs=3, reps=3)
        result = trainer.run()
        assert result.num_gpus == 2
        assert len(result.losses) >= 6
        assert result.losses[-1] < result.losses[0]

    def test_steps_per_epoch_shrink_with_gpus(self):
        one = _trainer(k=1).run()
        four = _trainer(k=4).run()
        assert four.steps_per_epoch == pytest.approx(
            max(1, int(np.ceil(one.steps_per_epoch / 4))), abs=1
        )

    def test_replicas_credited_busy_time(self):
        trainer = _trainer(k=3)
        result = trainer.run()
        machine = trainer.machine
        rank0 = machine.clock.busy_time(machine.gpus[0].name)
        rank1 = machine.clock.busy_time(machine.gpus[1].name)
        assert rank1 > 0
        assert rank1 <= rank0 * 1.01  # replicas mirror rank 0's compute

    def test_training_phase_scales_down(self):
        one = _trainer(k=1, epochs=1, reps=2).run()
        four = _trainer(k=4, epochs=1, reps=2).run()
        assert four.phases["training"] < one.phases["training"]

    def test_sampling_phase_does_not_scale(self):
        """The headline: CPU sampling is the serial bottleneck."""
        one = _trainer(k=1, epochs=1, reps=2).run()
        four = _trainer(k=4, epochs=1, reps=2).run()
        assert four.phases["sampling"] > 0.7 * one.phases["sampling"]

    def test_energy_grows_with_gpus(self):
        one = _trainer(k=1).run()
        four = _trainer(k=4).run()
        assert four.gpu_energy > one.gpu_energy
