"""Differential profiling: attribute the delta between two runs.

Two runs' span trees are aligned *by path* (root-to-span name chains,
the same key the flamegraph folds on), so renamed phases show up as one
``vanished`` plus one ``appeared`` entry rather than silently merging,
and missing spans land in ``vanished``.  The total virtual-time delta is
then attributed along four axes — span paths, the four phases, kernel
families, and per-(device, kernel) busy seconds — the A/B view for
dglite-vs-pyglite comparisons.  A fifth ``fastpath`` axis diffs the
``kernel.fastpath.hit``/``miss`` probe counters: fastpath-on vs
fastpath-off runs are virtual-time identical by the charged-cost
invariance, so the accelerated kernels show up there (hits vanished,
misses appeared), not as seconds.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.profiling.analysis.bundle import RunBundle, load_run_bundle
from repro.profiling.analysis.flame import SEPARATOR

#: Deltas below this many virtual seconds are noise-floor equal.
DELTA_EPS = 1e-9

#: Entries kept per category (sorted by |delta| descending).
MAX_ENTRIES = 50


def span_path_totals(span_records: Sequence[dict]) -> Dict[str, float]:
    """Path -> total (inclusive) virtual seconds, aggregated."""
    by_id = {r["id"]: r for r in span_records}
    totals: Dict[str, float] = {}
    for record in span_records:
        names: List[str] = []
        seen = set()
        current = record
        while current is not None and current["id"] not in seen:
            seen.add(current["id"])
            names.append(str(current.get("name", "?")))
            parent = current.get("parent")
            current = by_id.get(parent) if parent is not None else None
        path = SEPARATOR.join(reversed(names))
        seconds = float(record.get("dur", 0.0)) \
            + float(record.get("credited", 0.0))
        totals[path] = totals.get(path, 0.0) + seconds
    return totals


def classify_deltas(base: Dict[str, float], current: Dict[str, float],
                    eps: float = DELTA_EPS) -> Dict[str, List[dict]]:
    """Grown / shrunk / appeared / vanished entries between two keyed
    totals, each sorted by absolute delta (largest first)."""
    grown: List[dict] = []
    shrunk: List[dict] = []
    appeared: List[dict] = []
    vanished: List[dict] = []
    for key in sorted(set(base) | set(current)):
        a = base.get(key)
        b = current.get(key)
        if a is None:
            if b is not None and abs(b) > eps:
                appeared.append({"key": key, "base": 0.0, "current": b,
                                 "delta": b})
            continue
        if b is None:
            if abs(a) > eps:
                vanished.append({"key": key, "base": a, "current": 0.0,
                                 "delta": -a})
            continue
        delta = b - a
        if abs(delta) <= eps:
            continue
        entry = {"key": key, "base": a, "current": b, "delta": delta}
        (grown if delta > 0 else shrunk).append(entry)
    for bucket in (grown, shrunk, appeared, vanished):
        bucket.sort(key=lambda e: (-abs(e["delta"]), e["key"]))
        del bucket[MAX_ENTRIES:]
    return {"grown": grown, "shrunk": shrunk, "appeared": appeared,
            "vanished": vanished}


def _run_summary(bundle: RunBundle) -> dict:
    manifest = bundle.manifest
    provenance = manifest.get("provenance", {})
    return {
        "label": bundle.label,
        "command": manifest.get("command", "?"),
        "dataset": manifest.get("dataset", "?"),
        "seed": manifest.get("seed", 0),
        "kernel_mode": str(provenance.get("kernel_mode", "?"))
        if isinstance(provenance, dict) else "?",
        "total_seconds": bundle.total_seconds,
    }


def diff_bundles(base: RunBundle, current: RunBundle) -> dict:
    """The differential-profiling payload (without schema framing)."""
    phases_a = {k: float(v) for k, v in base.manifest.get("phases", {}).items()}
    phases_b = {k: float(v)
                for k, v in current.manifest.get("phases", {}).items()}
    families_a = {k: float(v) for k, v
                  in base.manifest.get("kernel_families", {}).items()}
    families_b = {k: float(v) for k, v
                  in current.manifest.get("kernel_families", {}).items()}
    kernels_a = _kernel_seconds(base)
    kernels_b = _kernel_seconds(current)
    delta_total = current.total_seconds - base.total_seconds
    classified = {
        "spans": classify_deltas(span_path_totals(base.span_records),
                                 span_path_totals(current.span_records)),
        "phases": classify_deltas(phases_a, phases_b),
        "kernel_families": classify_deltas(families_a, families_b),
        "kernels": classify_deltas(kernels_a, kernels_b),
        # By the kernel layer's charged-cost invariance, fastpath-on vs
        # fastpath-off runs agree on every virtual-time axis bit-for-bit;
        # the schedule change only shows in which accelerated paths were
        # taken, so the hit/miss counters get their own delta axis.
        "fastpath": classify_deltas(_fastpath_counts(base),
                                    _fastpath_counts(current),
                                    eps=0.0),
    }
    payload = {
        "base": _run_summary(base),
        "current": _run_summary(current),
        "delta_total_seconds": delta_total,
        "identical": _all_empty(classified) and abs(delta_total) <= DELTA_EPS,
    }
    payload.update(classified)
    return payload


def _fastpath_counts(bundle: RunBundle) -> Dict[str, float]:
    """path/hit|miss -> count from the kernel fast-path probe counters."""
    counts: Dict[str, float] = {}
    for metric, outcome in (("kernel.fastpath.hit", "hit"),
                            ("kernel.fastpath.miss", "miss")):
        for labels, value in bundle.counter_series(metric).items():
            key = f"{dict(labels).get('path', '?')}/{outcome}"
            counts[key] = counts.get(key, 0.0) + value
    return counts


def _kernel_seconds(bundle: RunBundle) -> Dict[str, float]:
    """device/kernel -> busy seconds from the run's counters."""
    totals: Dict[str, float] = {}
    for labels, value in bundle.counter_series("kernel.busy_seconds").items():
        labeled = dict(labels)
        key = f"{labeled.get('device', '?')}/{labeled.get('kernel', '?')}"
        totals[key] = totals.get(key, 0.0) + value
    return totals


def _all_empty(classified: Dict[str, Dict[str, List[dict]]]) -> bool:
    return all(not bucket
               for axes in classified.values()
               for bucket in axes.values())


def diff_run_dirs(base_dir: Union[str, Path],
                  current_dir: Union[str, Path]) -> dict:
    """Load two telemetry directories and return the ``repro.profile/1``
    diff payload."""
    from repro.profiling.analysis.schema import build_diff_payload

    base = load_run_bundle(base_dir)
    current = load_run_bundle(current_dir)
    return build_diff_payload(diff_bundles(base, current))
