"""Tests for the resilience layer: fault plans, injection, recovery.

The acceptance bar (ISSUE 5): a seeded fault plan with at least one
fault at each of the four seams completes with ``fault.recovered ==
fault.injected`` in telemetry, byte-identical across two runs with the
same seed.
"""

import json

import numpy as np
import pytest

from repro.bench.harness import run_training_experiment
from repro.distributed import DataParallelTrainer, multi_gpu_testbed
from repro.errors import FaultPlanError, InjectedFault, RecoveryExhausted
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.graphsage import build_graphsage, graphsage_sampler
from repro.models.trainer import MiniBatchTrainer, TrainConfig
from repro.profiling.profiler import PhaseProfiler
from repro.resilience import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    KINDS,
    RecoveryPolicy,
    SITES,
)
from repro.resilience import runtime as resilience
from repro.simtime import VirtualClock
from repro.telemetry.exporters import write_prometheus
from repro.telemetry.runtime import session as telemetry_session


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_from_dict_round_trips_through_json(self):
        plan = FaultPlan.from_dict({
            "seed": 7,
            "faults": [
                {"site": "storage.read", "kind": "error", "at": 2},
                {"site": "replica", "kind": "dead", "rank": 3},
            ],
            "policies": {"storage.read": {"max_retries": 5, "jitter": 0.1}},
        })
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.seed == 7
        assert again.policy("storage.read").max_retries == 5
        assert again.policy("transfer.h2d") == DEFAULT_POLICY

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 1,
            "faults": [{"site": "transfer.h2d", "kind": "stall"}],
        }))
        plan = FaultPlan.from_file(path)
        assert plan.faults[0].site == "transfer.h2d"
        with pytest.raises(FaultPlanError, match="no fault plan"):
            FaultPlan.from_file(tmp_path / "missing.json")

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seeds": 3})
        with pytest.raises(FaultPlanError, match="malformed"):
            FaultPlan.from_dict(
                {"faults": [{"site": "replica", "kind": "dead", "when": 9}]}
            )

    def test_unknown_site_and_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultSpec(site="gpu.meltdown", kind="error")
        with pytest.raises(FaultPlanError, match="cannot fail with"):
            FaultSpec(site="sampler.worker", kind="stall")
        with pytest.raises(FaultPlanError, match="unknown site"):
            FaultPlan(policies={"gpu.meltdown": RecoveryPolicy()})

    def test_spec_bounds(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="storage.read", kind="error", at=0)
        with pytest.raises(FaultPlanError):
            FaultSpec(site="storage.read", kind="error", severity=1.5)
        with pytest.raises(FaultPlanError):
            FaultSpec(site="storage.read", kind="stall", stall_seconds=-1)
        with pytest.raises(FaultPlanError):
            FaultSpec(site="replica", kind="straggler", slow_factor=0.5)
        with pytest.raises(FaultPlanError, match="rank must be >= 1"):
            FaultSpec(site="replica", kind="dead", rank=0)

    def test_policy_bounds(self):
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(factor=0.9)
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(jitter=1.0)

    def test_covers_window(self):
        spec = FaultSpec(site="transfer.h2d", kind="error", at=3, count=2)
        assert [spec.covers(n) for n in range(1, 7)] == \
            [False, False, True, True, False, False]

    def test_describe_is_deterministic(self):
        plan = FaultPlan(seed=4, faults=(
            FaultSpec(site="replica", kind="dead"),
            FaultSpec(site="storage.read", kind="error"),
        ))
        assert plan.describe() == \
            "seed=4 faults=2 sites=replica,storage.read"

    def test_every_site_has_kinds(self):
        assert set(KINDS) == set(SITES)
        assert all(KINDS[site] for site in SITES)


# ----------------------------------------------------------------------
# injector + runtime
# ----------------------------------------------------------------------
class TestInjector:
    def test_arm_counts_occurrences_per_site(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="storage.read", kind="error", at=2, count=2),
        ))
        injector = FaultInjector(plan)
        assert injector.arm("storage.read") is None          # occurrence 1
        assert injector.arm("transfer.h2d") is None          # other site
        assert injector.arm("storage.read") is not None      # occurrence 2
        assert injector.arm("storage.read") is not None      # occurrence 3
        assert injector.arm("storage.read") is None          # occurrence 4
        assert injector.occurrence("storage.read") == 4
        assert injector.occurrence("transfer.h2d") == 1

    def test_backoff_is_exponential(self):
        plan = FaultPlan(policies={
            "storage.read": RecoveryPolicy(backoff=0.1, factor=3.0),
        })
        injector = FaultInjector(plan)
        assert injector.backoff_delay("storage.read", 1) == pytest.approx(0.1)
        assert injector.backoff_delay("storage.read", 2) == pytest.approx(0.3)
        assert injector.backoff_delay("storage.read", 3) == pytest.approx(0.9)

    def test_jitter_is_seeded_and_bounded(self):
        def delays(seed):
            plan = FaultPlan(seed=seed, policies={
                "replica": RecoveryPolicy(backoff=1.0, jitter=0.5),
            })
            return [FaultInjector(plan).backoff_delay("replica", n)
                    for n in (1, 2, 3)]

        assert delays(0) == delays(0)          # deterministic per seed
        assert delays(0) != delays(1)          # seed matters
        for delay, base in zip(delays(0), (1.0, 2.0, 4.0)):
            assert 0.5 * base <= delay <= 1.5 * base

    def test_summary_accounts_by_site(self):
        injector = FaultInjector(FaultPlan())
        injector.record_injected("storage.read", kind="error")
        injector.record_retry("storage.read")
        injector.record_recovered("storage.read", action="retry")
        injector.record_injected("replica", kind="dead")
        injector.record_recovered("replica", action="exclude")
        summary = injector.summary()
        assert summary["injected"] == 2
        assert summary["recovered"] == 2
        assert summary["retries"] == 1
        assert summary["degraded"] == 0
        assert summary["sites"]["storage.read"]["retries"] == 1
        assert summary["sites"]["replica"]["injected"] == 1


class TestRuntime:
    def test_disabled_by_default(self):
        assert resilience.active() is None
        assert not resilience.enabled()
        assert resilience.arm("storage.read") is None

    def test_session_activates_and_pops(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="storage.read", kind="error"),
        ))
        with resilience.session(plan) as injector:
            assert resilience.active() is injector
            assert resilience.arm("storage.read") is not None
        assert resilience.active() is None

    def test_with_retries_charges_backoff_on_virtual_clock(self):
        plan = FaultPlan(
            faults=(FaultSpec(site="storage.read", kind="error", count=2),),
            policies={"storage.read": RecoveryPolicy(max_retries=3,
                                                     backoff=0.5, factor=2.0)},
        )
        clock = VirtualClock()
        calls = []

        def attempt():
            fault = resilience.arm("storage.read")
            calls.append(1)
            if fault is not None:
                raise InjectedFault("storage.read", fault.kind)
            return "ok"

        with resilience.session(plan) as injector:
            assert resilience.with_retries("storage.read", clock,
                                           attempt) == "ok"
        assert len(calls) == 3                      # 2 faults + 1 success
        assert clock.now == pytest.approx(0.5 + 1.0)
        summary = injector.summary()
        assert summary["injected"] == 0             # attempt() did not record
        assert summary["retries"] == 2
        assert summary["recovered"] == 2

    def test_with_retries_exhausts_into_recovery_exhausted(self):
        plan = FaultPlan(
            faults=(FaultSpec(site="transfer.h2d", kind="error", count=99),),
            policies={"transfer.h2d": RecoveryPolicy(max_retries=2,
                                                     backoff=0.0)},
        )
        clock = VirtualClock()

        def attempt():
            fault = resilience.arm("transfer.h2d")
            if fault is not None:
                raise InjectedFault("transfer.h2d", fault.kind)
            return "ok"

        with resilience.session(plan) as injector:
            with pytest.raises(RecoveryExhausted) as excinfo:
                resilience.with_retries("transfer.h2d", clock, attempt)
        assert excinfo.value.failures == 3
        # The terminal fault stays unrecovered: the telemetry shows it.
        assert injector.summary()["recovered"] == 2

    def test_real_exceptions_are_never_retried(self):
        calls = []

        def attempt():
            calls.append(1)
            raise ValueError("real bug")

        with resilience.session(FaultPlan()):
            with pytest.raises(ValueError):
                resilience.with_retries("storage.read", VirtualClock(),
                                        attempt)
        assert len(calls) == 1


# ----------------------------------------------------------------------
# the four seams
# ----------------------------------------------------------------------
def _plan(*faults, seed=0, policies=None):
    return FaultPlan(seed=seed, faults=tuple(faults),
                     policies=policies or {})


class TestStorageSeam:
    def test_read_error_is_retried_and_charged(self):
        machine = paper_testbed()
        baseline = paper_testbed()
        nbytes = 1 << 20
        baseline.read_storage(nbytes)
        plan = _plan(
            FaultSpec(site="storage.read", kind="error", severity=0.5),
            policies={"storage.read": RecoveryPolicy(backoff=0.25)},
        )
        with resilience.session(plan) as injector:
            machine.read_storage(nbytes)
        summary = injector.summary()
        assert summary["injected"] == 1
        assert summary["recovered"] == 1
        assert summary["retries"] == 1
        # Wasted half-read + backoff + full successful read.
        clean = baseline.clock.now
        assert machine.clock.now == pytest.approx(clean * 1.5 + 0.25)

    def test_torn_write_wastes_the_full_read(self):
        machine = paper_testbed()
        baseline = paper_testbed()
        nbytes = 1 << 20
        baseline.read_storage(nbytes)
        plan = _plan(
            FaultSpec(site="storage.read", kind="torn_write"),
            policies={"storage.read": RecoveryPolicy(backoff=0.0)},
        )
        with resilience.session(plan):
            machine.read_storage(nbytes)
        assert machine.clock.now == pytest.approx(2 * baseline.clock.now)

    def test_stall_adds_latency_without_retry(self):
        machine = paper_testbed()
        baseline = paper_testbed()
        nbytes = 1 << 20
        baseline.read_storage(nbytes)
        plan = _plan(FaultSpec(site="storage.read", kind="stall",
                               stall_seconds=0.125))
        with resilience.session(plan) as injector:
            machine.read_storage(nbytes)
        summary = injector.summary()
        assert summary["injected"] == 1
        assert summary["recovered"] == 1
        assert summary["retries"] == 0
        assert machine.clock.now == pytest.approx(
            baseline.clock.now + 0.125)

    def test_exhaustion_escapes(self):
        machine = paper_testbed()
        plan = _plan(
            FaultSpec(site="storage.read", kind="error", count=99),
            policies={"storage.read": RecoveryPolicy(max_retries=1,
                                                     backoff=0.0)},
        )
        with resilience.session(plan):
            with pytest.raises(RecoveryExhausted):
                machine.read_storage(1 << 20)


class TestTransferSeam:
    def test_h2d_stall_and_error(self):
        machine = paper_testbed()
        baseline = paper_testbed()
        nbytes = 1 << 22
        baseline.pcie.h2d(nbytes)
        clean = baseline.clock.now
        plan = _plan(
            FaultSpec(site="transfer.h2d", kind="stall", at=1,
                      stall_seconds=0.0625),
            FaultSpec(site="transfer.h2d", kind="error", at=2, severity=1.0),
            policies={"transfer.h2d": RecoveryPolicy(backoff=0.0)},
        )
        with resilience.session(plan) as injector:
            machine.pcie.h2d(nbytes)   # stalled
            machine.pcie.h2d(nbytes)   # fails once, retried
        summary = injector.summary()
        assert summary["injected"] == 2
        assert summary["recovered"] == 2
        assert summary["retries"] == 1
        assert machine.clock.now == pytest.approx(3 * clean + 0.0625)

    def test_d2h_is_not_a_fault_site(self):
        machine = paper_testbed()
        plan = _plan(FaultSpec(site="transfer.h2d", kind="error", count=99),
                     policies={"transfer.h2d": RecoveryPolicy(max_retries=0)})
        with resilience.session(plan) as injector:
            machine.pcie.d2h(1 << 20)  # must not raise
        assert injector.summary()["injected"] == 0


def _minibatch_trainer(machine, num_workers=0, epochs=1, framework="dglite",
                       **config_kwargs):
    fw = get_framework(framework)
    fgraph = fw.load("ppi", machine, scale=0.3)
    sampler = graphsage_sampler(fw, fgraph, seed=0)
    net = build_graphsage(fw, fgraph, hidden=16, seed=0)
    config = TrainConfig(epochs=epochs, placement="cpugpu",
                         num_workers=num_workers, representative_batches=2,
                         seed=0, **config_kwargs)
    profiler = PhaseProfiler(machine.clock)
    return MiniBatchTrainer(fw, fgraph, sampler, net, config,
                            profiler=profiler)


class TestWorkerSeam:
    def test_crash_is_respawned(self):
        machine = paper_testbed()
        trainer = _minibatch_trainer(machine, num_workers=2)
        plan = _plan(
            FaultSpec(site="sampler.worker", kind="crash", at=1, severity=0.5),
            policies={"sampler.worker": RecoveryPolicy(backoff=0.01)},
        )
        with resilience.session(plan) as injector:
            result = trainer.run()
        summary = injector.summary()
        assert summary["injected"] == 1
        assert summary["recovered"] == 1
        assert summary["retries"] == 1
        assert summary["degraded"] == 0
        assert not trainer._workers_degraded
        assert result.losses  # the run still trains

    def test_repeated_crashes_degrade_to_inline_sampling(self):
        machine = paper_testbed()
        trainer = _minibatch_trainer(machine, num_workers=2)
        plan = _plan(
            FaultSpec(site="sampler.worker", kind="crash", count=99),
            policies={"sampler.worker": RecoveryPolicy(max_retries=1,
                                                       backoff=0.0,
                                                       degrade=True)},
        )
        with resilience.session(plan) as injector:
            result = trainer.run()
        summary = injector.summary()
        assert trainer._workers_degraded
        assert summary["degraded"] == 1
        assert summary["injected"] == summary["recovered"] == 2
        # Degraded epochs sample inline: once the pool is gone, the site
        # is never armed again.
        assert injector.occurrence("sampler.worker") == 2
        assert result.losses

    def test_degrade_disabled_exhausts(self):
        machine = paper_testbed()
        trainer = _minibatch_trainer(machine, num_workers=2)
        plan = _plan(
            FaultSpec(site="sampler.worker", kind="crash", count=99),
            policies={"sampler.worker": RecoveryPolicy(max_retries=1,
                                                       backoff=0.0,
                                                       degrade=False)},
        )
        with resilience.session(plan):
            with pytest.raises(RecoveryExhausted):
                trainer.run()

    def test_inline_sampling_never_arms_the_worker_site(self):
        machine = paper_testbed()
        trainer = _minibatch_trainer(machine, num_workers=0)
        plan = _plan(FaultSpec(site="sampler.worker", kind="crash", count=99),
                     policies={"sampler.worker":
                               RecoveryPolicy(max_retries=0, degrade=False)})
        with resilience.session(plan) as injector:
            trainer.run()
        assert injector.occurrence("sampler.worker") == 0


def _dp_trainer(k=4, epochs=1, reps=2):
    machine = multi_gpu_testbed(k)
    fw = get_framework("dglite")
    fgraph = fw.load("ppi", machine, scale=0.3)
    sampler = graphsage_sampler(fw, fgraph, seed=0)
    net = build_graphsage(fw, fgraph, hidden=16, seed=0)
    trainer = DataParallelTrainer(fw, fgraph, sampler, net, epochs=epochs,
                                  representative_steps=reps)
    return machine, trainer


class TestReplicaSeam:
    def test_straggler_waits_without_exclusion(self):
        machine, trainer = _dp_trainer(k=4)
        plan = _plan(FaultSpec(site="replica", kind="straggler", at=1,
                               slow_factor=3.0))
        with resilience.session(plan) as injector:
            trainer.run()
        summary = injector.summary()
        assert summary["injected"] == 1
        assert summary["recovered"] == 1
        assert trainer._active_ranks == [0, 1, 2, 3]
        assert summary["sites"]["replica"]["injected"] == 1

    def test_dead_replica_is_excluded_and_resharded(self):
        machine, trainer = _dp_trainer(k=4)
        plan = _plan(FaultSpec(site="replica", kind="dead", at=1, rank=2))
        with resilience.session(plan) as injector:
            result = trainer.run()
        summary = injector.summary()
        assert summary["injected"] == 1
        assert summary["recovered"] == 1
        assert trainer._active_ranks == [0, 1, 3]
        assert result.losses
        # The re-executed shard shows up on GPU 0's ledger.
        gpu0 = machine.gpus[0].name
        tags = {iv.tag for iv in machine.clock.busy_intervals(gpu0)}
        assert "dp-reshard" in tags

    def test_rank_zero_cannot_die(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="replica", kind="dead", rank=0)

    def test_single_gpu_has_no_victims(self):
        machine, trainer = _dp_trainer(k=1)
        plan = _plan(FaultSpec(site="replica", kind="dead", count=99))
        with resilience.session(plan) as injector:
            trainer.run()
        # No eligible victim: the fault silently cannot fire, and
        # neither counter moves (recovered == injected still holds).
        summary = injector.summary()
        assert summary["injected"] == summary["recovered"] == 0


# ----------------------------------------------------------------------
# acceptance: all four seams, one run, deterministic telemetry
# ----------------------------------------------------------------------
ALL_SEAMS_PLAN = {
    "seed": 42,
    "faults": [
        {"site": "storage.read", "kind": "error", "at": 1, "severity": 0.5},
        {"site": "transfer.h2d", "kind": "stall", "at": 2,
         "stall_seconds": 0.01},
        {"site": "transfer.h2d", "kind": "error", "at": 5, "severity": 1.0},
        {"site": "sampler.worker", "kind": "crash", "at": 1},
        {"site": "replica", "kind": "straggler", "at": 1, "slow_factor": 2.0},
        {"site": "replica", "kind": "dead", "at": 2, "rank": 3},
    ],
    "policies": {
        "storage.read": {"max_retries": 3, "backoff": 0.02, "jitter": 0.25},
        "transfer.h2d": {"max_retries": 3, "backoff": 0.01},
        "sampler.worker": {"max_retries": 2, "backoff": 0.01},
    },
}


def _run_all_seams(out_dir):
    """One orchestrated run that arms every seam, returns its summary."""
    plan = FaultPlan.from_dict(ALL_SEAMS_PLAN)
    machine = multi_gpu_testbed(4)
    fw = get_framework("dglite")
    with telemetry_session(machine.clock) as tsession, \
            resilience.session(plan) as injector:
        fgraph = fw.load("ppi", machine, scale=0.3)        # storage.read
        sampler = graphsage_sampler(fw, fgraph, seed=0)
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
        config = TrainConfig(epochs=1, placement="cpugpu", num_workers=2,
                             representative_batches=2, seed=0)
        profiler = PhaseProfiler(machine.clock)
        MiniBatchTrainer(fw, fgraph, sampler, net, config,
                         profiler=profiler).run()          # h2d + worker
        dp_sampler = graphsage_sampler(fw, fgraph, seed=1)
        dp_net = build_graphsage(fw, fgraph, hidden=16, seed=1)
        DataParallelTrainer(fw, fgraph, dp_sampler, dp_net, epochs=1,
                            representative_steps=2).run()  # replica
        write_prometheus(out_dir / "metrics.prom", tsession.metrics)
    return injector.summary()


class TestAllSeamsAcceptance:
    def test_recovered_equals_injected_and_bytes_repeat(self, tmp_path):
        first = tmp_path / "a"
        second = tmp_path / "b"
        first.mkdir()
        second.mkdir()
        summary = _run_all_seams(first)
        again = _run_all_seams(second)

        # Every seam injected at least one fault...
        assert set(summary["sites"]) == set(SITES)
        for site in SITES:
            assert summary["sites"][site]["injected"] >= 1
        # ...and every fault was recovered.
        assert summary["injected"] == summary["recovered"]
        assert summary["injected"] >= 6

        # Same seed, same plan: identical accounting and identical
        # telemetry bytes.
        assert again == summary
        assert (second / "metrics.prom").read_bytes() == \
            (first / "metrics.prom").read_bytes()

        prom = (first / "metrics.prom").read_text()
        assert "repro_fault_injected" in prom
        assert "repro_fault_recovered" in prom


class TestHarnessIntegration:
    def test_experiment_reports_resilience_summary(self, tmp_path):
        plan = {
            "seed": 0,
            "faults": [
                {"site": "storage.read", "kind": "error"},
                {"site": "transfer.h2d", "kind": "stall",
                 "stall_seconds": 0.01},
                {"site": "sampler.worker", "kind": "crash"},
            ],
            "policies": {"sampler.worker": {"backoff": 0.01}},
        }
        out = tmp_path / "telemetry"
        result = run_training_experiment(
            "dglite", "ppi", "graphsage", placement="cpugpu", epochs=1,
            representative_batches=2, seed=0, num_workers=2,
            telemetry_dir=str(out), fault_plan=plan,
        )
        assert result.resilience["injected"] == 3
        assert result.resilience["recovered"] == 3
        assert result.completed
        names = {line.split("{")[0] for line
                 in (out / "metrics.prom").read_text().splitlines()
                 if line and not line.startswith("#")}
        assert "repro_fault_injected" in names
        assert "repro_fault_recovered" in names
        assert "repro_fault_retries" in names

    def test_plan_file_and_manifest_stamp(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 3,
            "faults": [{"site": "storage.read", "kind": "stall",
                        "stall_seconds": 0.02}],
        }))
        out = tmp_path / "telemetry"
        result = run_training_experiment(
            "dglite", "ppi", "graphsage", epochs=1,
            representative_batches=2, seed=0,
            telemetry_dir=str(out), fault_plan=str(path),
        )
        assert result.resilience["injected"] == 1
        manifest = json.loads((out / "run.json").read_text())
        assert manifest["config"]["fault_plan"] == \
            "seed=3 faults=1 sites=storage.read"

    def test_faultless_run_has_no_resilience_block(self):
        result = run_training_experiment(
            "dglite", "ppi", "graphsage", epochs=1,
            representative_batches=2, seed=0,
        )
        assert result.resilience == {}
