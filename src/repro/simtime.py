"""Virtual time for the simulated machine.

All runtimes reported by the benchmark harness come from a
:class:`VirtualClock` that kernels and transfers advance explicitly.  Real
numpy execution time never leaks into results, which makes every figure
deterministic and lets the cost models represent the paper's testbed (dual
Xeon Silver 4114 + Quadro RTX 8000) rather than this container.

Devices can advance the clock in two modes:

* ``advance(dt)`` — serial progress: the whole machine moves forward.
* ``occupy(device_key, dt)`` — per-device busy tracking used by the power
  model to integrate dynamic power only while a device is actually busy.

Multi-lane schedules (the streaming datapipe) are built with
:class:`LaneScheduler`: each resource (sampler-worker CPUs, PCIe, GPU)
gets its own timeline, jobs are placed at the max of their dependency
finish times and their lane's front, and ``drain()`` commits the busy
intervals and advances the machine clock once to the latest lane front —
replacing per-call serial ``advance()`` on the hot path.

The legacy *async overlap window* (``overlap()``: charge the maximum of
the overlapped durations) is kept as a thin compatibility shim over the
lane scheduler; new code should schedule lanes explicitly.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

#: Tolerance for interval-ordering checks (floating-point bookkeeping).
_EPS = 1e-9


@dataclass
class DeferredRecord:
    """Work measured inside a :meth:`VirtualClock.deferred` block."""

    total: float = 0.0
    busy: Dict[str, float] = field(default_factory=dict)


@dataclass
class BusyInterval:
    """A half-open interval [start, end) during which a device was busy."""

    device: str
    start: float
    end: float
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class VirtualClock:
    """A monotonically advancing simulated clock with busy-interval tracking."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._defer_depth: int = 0
        self._defer_record: Optional["DeferredRecord"] = None
        self._busy: List[BusyInterval] = []
        # Per-device sorted indexes for O(log n) busy_time queries: the
        # energy monitor samples busy_time thousands of times per run.
        # Intervals per device are disjoint and start-ordered because the
        # clock is serial.
        self._starts: Dict[str, List[float]] = {}
        self._ends: Dict[str, List[float]] = {}
        self._cumdur: Dict[str, List[float]] = {}
        self._overlap_depth: int = 0
        self._overlap_sched: Optional["LaneScheduler"] = None
        self._listeners: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def add_listener(self, fn: Callable[[float, float], None]) -> None:
        """Register ``fn(old_now, new_now)`` to run on every advance."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[float, float], None]) -> None:
        self._listeners.remove(fn)

    def advance(self, dt: float) -> None:
        """Move simulated time forward by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        if self._defer_depth > 0:
            self._defer_record.total += dt
            return
        if self._overlap_depth > 0:
            # Inside an overlap window durations race: each advance is a
            # job on its own anonymous lane, so the window's makespan is
            # the longest duration (charged when the window closes).
            sched = self._overlap_sched
            sched.submit(f"overlap/{len(sched.jobs)}", dt)
            return
        old = self._now
        self._now += dt
        for fn in self._listeners:
            fn(old, self._now)

    def occupy(self, device: str, dt: float, tag: str = "") -> None:
        """Advance the clock by ``dt`` and mark ``device`` busy during it."""
        if dt < 0:
            raise ValueError(f"cannot occupy for negative dt={dt}")
        if self._defer_depth > 0:
            rec = self._defer_record
            rec.total += dt
            rec.busy[device] = rec.busy.get(device, 0.0) + dt
            return
        start = self._now
        # Record the interval before advancing so clock listeners (power
        # sampling) see the kernel that is causing this advance.
        if dt > 0 and self._overlap_depth == 0:
            self._busy.append(BusyInterval(device, start, start + dt, tag))
            starts = self._starts.setdefault(device, [])
            ends = self._ends.setdefault(device, [])
            cum = self._cumdur.setdefault(device, [0.0])
            starts.append(start)
            ends.append(start + dt)
            cum.append(cum[-1] + dt)
        self.advance(dt)

    @contextmanager
    def deferred(self) -> Iterator["DeferredRecord"]:
        """Measure work inside the block without applying it to the clock.

        Every ``advance``/``occupy`` inside the block accumulates into the
        returned :class:`DeferredRecord` (total seconds + per-device busy)
        and leaves ``now`` untouched.  The caller decides how to apply the
        measured cost afterwards — e.g. the multi-worker sampling path
        divides it by the worker speedup and overlaps part of it with the
        previous batch's training.  Nesting is not supported.
        """
        if self._defer_depth > 0:
            raise RuntimeError("deferred() blocks cannot nest")
        record = DeferredRecord()
        self._defer_depth += 1
        self._defer_record = record
        try:
            yield record
        finally:
            self._defer_depth -= 1
            self._defer_record = None

    def occupy_parallel(self, durations: Dict[str, float], tag: str = "parallel",
                        backfill: bool = False) -> None:
        """Mark several devices busy over the same window.

        With ``backfill=False`` the clock advances by the longest duration
        and every device is busy from the old ``now`` — a synchronous
        parallel region (e.g. a ring all-reduce).  With ``backfill=True``
        nothing advances: intervals are recorded ending at the current
        ``now``, crediting devices that worked concurrently with an
        already-executed serial segment (the data-parallel trainer charges
        replica GPUs this way).  Backfill requires each device to have
        been idle over its window; overlapping an existing interval raises.
        """
        durations = {d: dt for d, dt in durations.items() if dt > 0}
        for device, dt in durations.items():
            if dt < 0:
                raise ValueError("negative duration")
        if not durations:
            return
        if not backfill:
            start = self._now
            longest = max(durations.values())
            for device, dt in durations.items():
                self._busy.append(BusyInterval(device, start, start + dt, tag))
                starts = self._starts.setdefault(device, [])
                ends = self._ends.setdefault(device, [])
                cum = self._cumdur.setdefault(device, [0.0])
                starts.append(start)
                ends.append(start + dt)
                cum.append(cum[-1] + dt)
            self.advance(longest)
            return
        for device, dt in durations.items():
            start = self._now - dt
            ends = self._ends.setdefault(device, [])
            if ends and ends[-1] > start + 1e-12:
                raise ValueError(
                    f"backfill window for {device!r} overlaps existing busy time"
                )
            self._busy.append(BusyInterval(device, start, self._now, tag))
            starts = self._starts.setdefault(device, [])
            cum = self._cumdur.setdefault(device, [0.0])
            starts.append(start)
            ends.append(self._now)
            cum.append(cum[-1] + dt)

    @contextmanager
    def overlap(self, device: str = "", tag: str = "overlap") -> Iterator[None]:
        """Charge the *max* of the durations advanced inside the window.

        .. deprecated::
            ``overlap()`` predates :class:`LaneScheduler` and survives as a
            thin compatibility shim over it: every ``advance`` inside the
            window becomes a job on its own anonymous lane of a private
            scheduler, and closing the window charges the scheduler's
            makespan (= the longest duration, exactly the old semantics).
            New code should build a :class:`LaneScheduler` with explicit
            per-resource lanes instead.

        Models asynchronous copy/compute overlap (DGL pre-fetching).  Nested
        overlaps share one window.
        """
        self._overlap_depth += 1
        if self._overlap_depth == 1:
            self._overlap_sched = LaneScheduler(self)
        try:
            yield
        finally:
            self._overlap_depth -= 1
            if self._overlap_depth == 0:
                sched = self._overlap_sched
                self._overlap_sched = None
                dt = sched.makespan
                if device:
                    self.occupy(device, dt, tag)
                else:
                    self.advance(dt)

    def commit_interval(self, device: str, start: float, end: float,
                        tag: str = "", lane: str = "") -> None:
        """Record an externally scheduled busy interval.

        :class:`LaneScheduler.drain` uses this to materialize a multi-lane
        schedule: intervals may lie in the clock's *future* (the caller
        advances afterwards) but must arrive start-ordered and disjoint per
        key.  With ``lane`` set, the interval is recorded under the
        ``device@lane`` key (its own trace lane) and additionally merged
        into the base device's busy-time index as a *union* across lanes,
        so power metering — which asks ``busy_time(device)`` — keeps
        seeing the device as busy whenever any of its lanes is.
        """
        if end < start:
            raise ValueError(f"interval ends before it starts ({start}..{end})")
        if end - start <= 0:
            return
        key = f"{device}@{lane}" if lane else device
        starts = self._starts.setdefault(key, [])
        ends = self._ends.setdefault(key, [])
        cum = self._cumdur.setdefault(key, [0.0])
        if ends and start < ends[-1] - _EPS:
            raise ValueError(
                f"interval [{start}, {end}) overlaps existing busy time on "
                f"{key!r} (last end {ends[-1]})"
            )
        start = max(start, ends[-1]) if ends else start
        if end <= start:
            return
        self._busy.append(BusyInterval(key, start, end, tag))
        starts.append(start)
        ends.append(end)
        cum.append(cum[-1] + (end - start))
        if lane:
            self._union_merge(device, start, end)

    def _union_merge(self, device: str, start: float, end: float) -> None:
        """Fold one lane interval into the base device's busy-time union."""
        starts = self._starts.setdefault(device, [])
        ends = self._ends.setdefault(device, [])
        cum = self._cumdur.setdefault(device, [0.0])
        if ends and start <= ends[-1] + _EPS:
            if end > ends[-1]:  # extends the trailing interval
                cum[-1] += end - ends[-1]
                ends[-1] = end
            return
        starts.append(start)
        ends.append(end)
        cum.append(cum[-1] + (end - start))

    def busy_time(self, device: str, start: float = 0.0, end: Optional[float] = None) -> float:
        """Total busy seconds for ``device`` within [start, end)."""
        if end is None:
            end = self._now
        starts = self._starts.get(device)
        if not starts or end <= start:
            return 0.0
        ends = self._ends[device]
        cum = self._cumdur[device]
        # Intervals are disjoint and ordered; find the overlapping slice.
        lo = bisect.bisect_right(ends, start)
        hi = bisect.bisect_left(starts, end)
        if lo >= hi:
            return 0.0
        total = cum[hi] - cum[lo]
        total -= max(0.0, start - starts[lo])  # clip leading interval
        total -= max(0.0, ends[hi - 1] - end)  # clip trailing interval
        return max(0.0, total)

    def busy_intervals(self, device: Optional[str] = None) -> List[BusyInterval]:
        """Busy intervals, optionally filtered by device key."""
        if device is None:
            return list(self._busy)
        return [iv for iv in self._busy if iv.device == device]

    def reset(self) -> None:
        """Reset time to zero and forget busy history (listeners survive)."""
        self._now = 0.0
        self._busy.clear()
        self._starts.clear()
        self._ends.clear()
        self._cumdur.clear()
        self._overlap_depth = 0
        self._overlap_sched = None


@dataclass
class LaneJob:
    """One scheduled unit of work on a :class:`LaneScheduler` lane."""

    job_id: int
    lane: str
    start: float
    end: float
    total: float
    busy: Dict[str, float]
    tag: str = ""
    #: Earliest time the job *could* have started (dependency finish);
    #: ``start - ready`` is the time it queued behind its lane.
    ready: float = 0.0

    @property
    def wait(self) -> float:
        return self.start - self.ready


class LaneScheduler:
    """Event-driven per-resource timelines over one :class:`VirtualClock`.

    Each lane (a sampler-worker CPU, the PCIe link, the GPU, ...) is an
    independent timeline with a monotone *front*.  ``submit()`` places a
    job at the max of its dependency finish times, an optional explicit
    lower bound, and its lane's front — so lanes overlap freely while
    work on one lane stays serial.  Nothing touches the clock until
    ``drain()``, which commits every job's per-device busy time (under
    ``device@lane`` keys, see :meth:`VirtualClock.commit_interval`) and
    advances the machine clock once, to the latest lane front.

    The scheduler is one-shot: ``drain()`` finalizes it.  Pipelines build
    one scheduler per epoch.
    """

    def __init__(self, clock: VirtualClock, origin: Optional[float] = None) -> None:
        self.clock = clock
        self.origin = clock.now if origin is None else origin
        self.jobs: List[LaneJob] = []
        self._fronts: Dict[str, float] = {}
        self._drained = False

    def front(self, lane: str) -> float:
        """The time at which ``lane`` next becomes free."""
        return self._fronts.get(lane, self.origin)

    @property
    def finish(self) -> float:
        """The latest lane front (absolute time)."""
        return max(self._fronts.values()) if self._fronts else self.origin

    @property
    def makespan(self) -> float:
        """Elapsed schedule time so far (``finish - origin``)."""
        return self.finish - self.origin

    def submit(self, lane: str, work: Union[DeferredRecord, float], *,
               deps: Sequence[LaneJob] = (), not_before: float = 0.0,
               tag: str = "", scale: float = 1.0) -> LaneJob:
        """Schedule measured ``work`` on ``lane``.

        ``work`` is a :class:`DeferredRecord` (measured inside
        ``clock.deferred()``) or plain seconds.  ``deps`` are jobs that
        must finish first; ``not_before`` adds an absolute lower bound
        (e.g. bounded-queue backpressure).  ``scale`` multiplies the
        job's duration and busy time — the datapipe uses it to model
        sublinear sampler-worker efficiency.
        """
        if self._drained:
            raise RuntimeError("LaneScheduler already drained")
        if scale < 0:
            raise ValueError("scale must be >= 0")
        if isinstance(work, DeferredRecord):
            total = work.total * scale
            busy = {d: s * scale for d, s in work.busy.items() if s > 0}
        else:
            if work < 0:
                raise ValueError("cannot schedule negative duration")
            total = float(work) * scale
            busy = {}
        ready = max([self.origin, not_before] + [dep.end for dep in deps])
        start = max(ready, self.front(lane))
        job = LaneJob(
            job_id=len(self.jobs), lane=lane, start=start, end=start + total,
            total=total, busy=busy, tag=tag, ready=ready,
        )
        self._fronts[lane] = job.end
        self.jobs.append(job)
        return job

    def lane_busy(self) -> Dict[str, float]:
        """Total scheduled busy seconds per lane (sum of job durations)."""
        totals: Dict[str, float] = {}
        for job in self.jobs:
            totals[job.lane] = totals.get(job.lane, 0.0) + job.total
        return totals

    def drain(self) -> float:
        """Commit the schedule to the clock; returns the elapsed seconds.

        Busy intervals are recorded *before* the single advance so clock
        listeners (power sampling) integrate over the full multi-lane
        timeline, mirroring how ``occupy()`` records-then-advances.
        """
        if self._drained:
            raise RuntimeError("LaneScheduler already drained")
        self._drained = True
        commits = []
        for job in self.jobs:
            for device in sorted(job.busy):
                seconds = min(job.busy[device], job.total)
                if seconds > 0:
                    commits.append((job.start, device, seconds, job))
        commits.sort(key=lambda c: (c[0], c[1], c[3].job_id))
        for start, device, seconds, job in commits:
            self.clock.commit_interval(device, start, start + seconds,
                                       tag=job.tag, lane=job.lane)
        elapsed = self.finish - self.clock.now
        if elapsed > 0:
            self.clock.advance(elapsed)
        return max(0.0, elapsed)


@dataclass
class Stopwatch:
    """Measures elapsed *virtual* time between start/stop marks."""

    clock: VirtualClock
    _start: Optional[float] = field(default=None, init=False)
    elapsed: float = field(default=0.0, init=False)

    def start(self) -> "Stopwatch":
        self._start = self.clock.now
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += self.clock.now - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @contextmanager
    def timing(self) -> Iterator["Stopwatch"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()
