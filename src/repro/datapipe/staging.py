"""Pinned staging buffers for in-flight mini-batches.

A pipelined epoch keeps up to ``depth`` batches alive at once: each one
holds a pinned host staging buffer (subgraph structure + gathered
features + labels, what a real dataloader pins for async H2D) and, once
``CopyTo`` runs, a GPU landing buffer of the same logical size.  Both
are accounted in the device memory ledgers, so a deep pipeline on a
large logical scale hits :class:`repro.errors.OutOfMemoryError` instead
of silently exceeding the VRAM/host budgets — the ledger *is* the
peak assertion.

Real execution is item-sequential, so buffers are retired by position:
when item ``i`` stages, every item ``<= i - depth`` has fully drained in
any valid depth-bounded schedule and its buffers are released.  The
ledger peak therefore reflects the true in-flight concurrency.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hardware.machine import Machine
from repro.hardware.memory import Allocation
from repro.telemetry import runtime as telemetry


class StagingPool:
    """Depth-bounded pinned host + GPU landing buffers for one epoch."""

    def __init__(self, machine: Machine, depth: int,
                 label: str = "datapipe") -> None:
        if depth < 1:
            raise ValueError("staging depth must be >= 1")
        self.machine = machine
        self.depth = depth
        self.label = label
        self._host: Dict[int, Allocation] = {}
        self._gpu: Dict[int, Allocation] = {}

    @property
    def live_host_bytes(self) -> int:
        return sum(a.nbytes for a in self._host.values())

    @property
    def live_gpu_bytes(self) -> int:
        return sum(a.nbytes for a in self._gpu.values())

    @property
    def live_items(self) -> int:
        return len(self._host.keys() | self._gpu.keys())

    def stage_host(self, index: int, nbytes: float) -> None:
        """Pin item ``index``'s staging buffer in host memory."""
        self._retire_drained(index)
        if nbytes > 0:
            self._host[index] = self.machine.cpu.memory.alloc(
                int(nbytes), label=f"{self.label}-staging"
            )
            self._record(staged=True)

    def stage_gpu(self, index: int, nbytes: float) -> None:
        """Allocate item ``index``'s landing buffer in device memory."""
        gpu = self.machine.gpu
        if gpu is None or nbytes <= 0:
            return
        self._gpu[index] = gpu.memory.alloc(
            int(nbytes), label=f"{self.label}-landing"
        )

    def _retire_drained(self, index: int) -> None:
        """Release buffers of items that any valid schedule has drained."""
        horizon = index - self.depth
        for items, ledger in ((self._host, self.machine.cpu.memory),
                              (self._gpu, getattr(self.machine.gpu, "memory", None))):
            for i in [i for i in items if i <= horizon]:
                ledger.release(items.pop(i))

    def close(self) -> None:
        """End-of-epoch teardown: every in-flight buffer is released."""
        for i, alloc in list(self._host.items()):
            self.machine.cpu.memory.release(alloc)
        self._host.clear()
        if self.machine.gpu is not None:
            for i, alloc in list(self._gpu.items()):
                self.machine.gpu.memory.release(alloc)
        self._gpu.clear()

    def _record(self, staged: bool = False) -> None:
        registry = telemetry.metrics()
        if registry is None:
            return
        if staged:
            registry.counter("datapipe.staged_batches").inc()
        registry.gauge("datapipe.staging_in_use_bytes").set(self.live_host_bytes)
