"""Tests for the shared vectorized sampling engine.

Covers the relabel/gather primitives (:mod:`repro.sampling.relabel`,
:mod:`repro.graph.formats`), edge cases the vectorized paths must handle
(degree-0 frontiers, empty extras, zero-length walks, fanout above the max
degree), and seed-pinned equivalence of :func:`sample_block_neighbors`
against the original per-seed reference loop.
"""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.graph.formats import (
    INDEX_DTYPE,
    AdjacencyCOO,
    coalesce,
    flat_positions,
    gather_neighborhoods,
    induced_subgraph,
)
from repro.sampling.neighbor import NeighborSampler, sample_block_neighbors
from repro.sampling.randomwalk import RandomWalkSampler
from repro.sampling.relabel import block_locals, relabel, unique_with_seeds


def reference_sample_block_neighbors(indptr, indices, seeds, fanout, rng):
    """The original per-seed Python loop, kept as the behavioral oracle."""
    srcs, dsts, examined = [], [], 0
    for seed in seeds:
        lo, hi = indptr[seed], indptr[seed + 1]
        degree = int(hi - lo)
        if degree == 0:
            continue
        examined += degree
        neighborhood = indices[lo:hi]
        if degree <= fanout:
            chosen = neighborhood
        else:
            chosen = neighborhood[rng.choice(degree, size=fanout, replace=False)]
        srcs.append(chosen)
        dsts.append(np.full(chosen.size, seed, dtype=INDEX_DTYPE))
    if srcs:
        return np.concatenate(srcs), np.concatenate(dsts), examined
    empty = np.empty(0, dtype=INDEX_DTYPE)
    return empty, empty, examined


def random_csr(num_nodes, num_edges, seed):
    """A coalesced (duplicate-free) random CSR adjacency."""
    rng = np.random.default_rng(seed)
    coo = coalesce(AdjacencyCOO(
        num_nodes,
        rng.integers(0, num_nodes, num_edges),
        rng.integers(0, num_nodes, num_edges),
    ))
    return coo.to_csr()


class TestFlatPositions:
    def test_concatenates_ranges(self):
        out = flat_positions(np.array([10, 20]), np.array([2, 3]))
        assert np.array_equal(out, [10, 11, 20, 21, 22])

    def test_zero_length_segments_skipped(self):
        out = flat_positions(np.array([5, 7, 9]), np.array([2, 0, 1]))
        assert np.array_equal(out, [5, 6, 9])

    def test_all_empty(self):
        out = flat_positions(np.array([3, 4]), np.array([0, 0]))
        assert out.size == 0 and out.dtype == INDEX_DTYPE


class TestGatherNeighborhoods:
    def test_matches_per_node_slices(self):
        csr = random_csr(50, 400, seed=3)
        nodes = np.array([7, 0, 33, 7, 12])
        neighbors, degrees, positions = gather_neighborhoods(
            csr.indptr, csr.indices, nodes
        )
        expected = np.concatenate([csr.neighbors(int(n)) for n in nodes])
        assert np.array_equal(neighbors, expected)
        assert np.array_equal(degrees, [csr.neighbors(int(n)).size for n in nodes])
        assert np.array_equal(csr.indices[positions], neighbors)

    def test_degree_zero_rows_contribute_nothing(self):
        # 0 -> 1, node 2 has no out-neighbors.
        csr = AdjacencyCOO(3, np.array([0]), np.array([1])).to_csr()
        neighbors, degrees, _ = gather_neighborhoods(
            csr.indptr, csr.indices, np.array([2, 0, 2])
        )
        assert np.array_equal(neighbors, [1])
        assert np.array_equal(degrees, [0, 1, 0])

    def test_empty_frontier(self):
        csr = random_csr(10, 40, seed=4)
        neighbors, degrees, positions = gather_neighborhoods(
            csr.indptr, csr.indices, np.empty(0, dtype=INDEX_DTYPE)
        )
        assert neighbors.size == degrees.size == positions.size == 0


class TestRelabel:
    def test_roundtrip_against_unsorted_map(self):
        id_map = np.array([40, 3, 17, 99, 8])
        ids = np.array([8, 8, 99, 3, 40])
        local = relabel(ids, id_map)
        assert np.array_equal(id_map[local], ids)

    def test_missing_id_raises(self):
        with pytest.raises(SamplerError, match="not in the id map"):
            relabel(np.array([1, 5]), np.array([1, 2, 3]))

    def test_missing_id_above_map_range_raises(self):
        with pytest.raises(SamplerError):
            relabel(np.array([1000]), np.array([1, 2, 3]))

    def test_empty_ids(self):
        out = relabel(np.empty(0, dtype=INDEX_DTYPE), np.array([4, 2]))
        assert out.size == 0

    def test_empty_map_rejected(self):
        with pytest.raises(SamplerError, match="empty id map"):
            relabel(np.array([1]), np.empty(0, dtype=INDEX_DTYPE))

    def test_precomputed_sorter_matches(self):
        id_map = np.array([9, 1, 5, 7])
        ids = np.array([5, 9, 1])
        sorter = np.argsort(id_map, kind="stable")
        assert np.array_equal(relabel(ids, id_map, sorter=sorter),
                              relabel(ids, id_map))


class TestUniqueWithSeeds:
    def test_seeds_prefix_then_sorted_fresh(self):
        out = unique_with_seeds(np.array([5, 2]), np.array([2, 9, 9, 1]))
        assert np.array_equal(out, [5, 2, 1, 9])

    def test_empty_extra_returns_seeds(self):
        seeds = np.array([3, 1, 4])
        assert np.array_equal(unique_with_seeds(seeds, np.empty(0)), seeds)

    def test_all_extras_already_seeds(self):
        seeds = np.array([3, 1, 4])
        out = unique_with_seeds(seeds, np.array([4, 1, 1, 3]))
        assert np.array_equal(out, seeds)


class TestBlockLocals:
    def test_roundtrip_and_prefix(self):
        dst_nodes = np.array([10, 4, 7])
        src_g = np.array([4, 99, 10, 23, 99])
        dst_g = np.array([10, 10, 4, 7, 7])
        src_nodes, src_local, dst_local = block_locals(src_g, dst_g, dst_nodes)
        assert np.array_equal(src_nodes[:dst_nodes.size], dst_nodes)
        assert np.array_equal(src_nodes[src_local], src_g)
        assert np.array_equal(dst_nodes[dst_local], dst_g)

    def test_empty_extra_means_src_nodes_equal_dst_nodes(self):
        dst_nodes = np.array([2, 0, 1])
        src_g = np.array([0, 1, 2, 0])
        dst_g = np.array([2, 2, 0, 1])
        src_nodes, _, _ = block_locals(src_g, dst_g, dst_nodes)
        assert np.array_equal(src_nodes, dst_nodes)


class TestNeighborEquivalence:
    """Seed-pinned equivalence of the vectorized sampler vs the reference."""

    def test_dsts_and_examined_identical(self):
        csr = random_csr(200, 3000, seed=11)
        seeds = np.random.default_rng(0).choice(200, size=64, replace=False)
        for fanout in (1, 3, 8):
            new = sample_block_neighbors(
                csr.indptr, csr.indices, seeds, fanout, np.random.default_rng(1)
            )
            ref = reference_sample_block_neighbors(
                csr.indptr, csr.indices, seeds, fanout, np.random.default_rng(1)
            )
            assert np.array_equal(new[1], ref[1])  # dsts
            assert new[0].size == ref[0].size
            assert new[2] == ref[2]  # examined

    def test_per_seed_sample_is_valid(self):
        csr = random_csr(200, 3000, seed=12)
        seeds = np.arange(120)
        fanout = 4
        src, dst, _ = sample_block_neighbors(
            csr.indptr, csr.indices, seeds, fanout, np.random.default_rng(2)
        )
        for seed in np.unique(dst):
            mine = src[dst == seed]
            hood = csr.neighbors(int(seed))
            assert mine.size == min(hood.size, fanout)
            assert mine.size == np.unique(mine).size  # no replacement
            assert np.isin(mine, hood).all()  # subset of the neighborhood

    def test_fanout_above_max_degree_is_exact_take_all(self):
        """With fanout > max degree neither impl consumes randomness, so
        outputs must match the reference bit-for-bit (srcs included)."""
        csr = random_csr(100, 600, seed=13)
        seeds = np.arange(100)
        fanout = int(csr.degrees().max()) + 1
        new = sample_block_neighbors(
            csr.indptr, csr.indices, seeds, fanout, np.random.default_rng(3)
        )
        ref = reference_sample_block_neighbors(
            csr.indptr, csr.indices, seeds, fanout, np.random.default_rng(3)
        )
        assert np.array_equal(new[0], ref[0])
        assert np.array_equal(new[1], ref[1])
        assert new[2] == ref[2]

    def test_marginal_frequencies_match_uniform(self):
        """Each of a hub's neighbors is kept with probability fanout/degree."""
        degree, fanout, trials = 16, 4, 4000
        hub = degree  # neighbors are nodes 0..degree-1
        coo = AdjacencyCOO(
            degree + 1,
            np.full(degree, hub),
            np.arange(degree),
        )
        csr = coo.to_csr()
        # One call with the hub repeated = `trials` independent draws.
        seeds = np.full(trials, hub)
        src, _, _ = sample_block_neighbors(
            csr.indptr, csr.indices, seeds, fanout, np.random.default_rng(4)
        )
        freq = np.bincount(src, minlength=degree) / trials
        assert freq.size >= degree
        expected = fanout / degree
        assert np.all(np.abs(freq[:degree] - expected) < 0.03)

    def test_all_degree_zero_seed_batch(self):
        # Only node 0 has an out-edge; seeds 2..4 are all degree 0.
        csr = AdjacencyCOO(5, np.array([0]), np.array([1])).to_csr()
        src, dst, examined = sample_block_neighbors(
            csr.indptr, csr.indices, np.array([2, 3, 4]), 5,
            np.random.default_rng(0)
        )
        assert src.size == dst.size == 0
        assert examined == 0

    def test_empty_seed_batch(self):
        csr = random_csr(10, 50, seed=14)
        src, dst, examined = sample_block_neighbors(
            csr.indptr, csr.indices, np.empty(0, dtype=INDEX_DTYPE), 5,
            np.random.default_rng(0)
        )
        assert src.size == dst.size == 0
        assert examined == 0


class TestNeighborSamplerEdgeCases:
    def test_zero_fanout_rejected_eagerly(self, tiny_graph):
        with pytest.raises(SamplerError, match="fanouts must all be >= 1"):
            NeighborSampler(tiny_graph, fanouts=(5, 0))

    def test_negative_fanout_rejected_eagerly(self, tiny_graph):
        with pytest.raises(SamplerError, match="fanouts must all be >= 1"):
            NeighborSampler(tiny_graph, fanouts=(-1,))

    def test_matches_reference_blocks(self, tiny_graph):
        """Full sampler: dst chains, prefixes, and edge validity hold on
        blocks produced by the vectorized relabel path."""
        sampler = NeighborSampler(tiny_graph, fanouts=(4, 3), seed=9)
        roots = tiny_graph.train_nodes()[:6]
        batch = sampler.sample(roots)
        for block in batch.blocks:
            n_dst = block.dst_nodes.size
            assert np.array_equal(block.src_nodes[:n_dst], block.dst_nodes)
            globals_src = block.src_nodes[block.src]
            globals_dst = block.dst_nodes[block.dst]
            for s, d in zip(globals_src, globals_dst):
                assert s in tiny_graph.adj.neighbors(int(d))


class TestRandomWalkEdgeCases:
    def test_walk_length_zero_paths_are_roots(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, num_roots=100, walk_length=0,
                                    seed=0)
        roots = np.array([5, 2, 2, 9])
        path = sampler.walk(roots)
        assert path.shape == (4, 1)
        assert np.array_equal(path[:, 0], roots)

    def test_walk_length_zero_sample_induces_root_subgraph(self, tiny_graph):
        sampler = RandomWalkSampler(tiny_graph, num_roots=100, walk_length=0,
                                    seed=0)
        roots = np.array([5, 2, 2, 9])
        batch = sampler.sample(roots)
        assert np.array_equal(batch.nodes, np.unique(roots))


class TestInducedSubgraphEquivalence:
    def test_matches_bruteforce_edge_set(self):
        csr = random_csr(60, 500, seed=15)
        nodes = np.unique(np.random.default_rng(5).choice(60, size=25))
        sub, edge_positions = induced_subgraph(csr, nodes)
        node_set = set(nodes.tolist())
        expected = set()
        for li, n in enumerate(nodes):
            for nb in csr.neighbors(int(n)):
                if int(nb) in node_set:
                    lj = int(np.searchsorted(nodes, nb))
                    expected.add((li, lj))
        assert set(zip(sub.src.tolist(), sub.dst.tolist())) == expected
        # Edge positions map back to the original CSR entries.
        assert np.array_equal(nodes[sub.dst], csr.indices[edge_positions])
