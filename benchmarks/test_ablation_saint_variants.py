"""Ablation: GraphSAINT's three sampling variants.

The paper benchmarks only the random-walk sampler (node/edge variants were
shown inferior in accuracy by the original work).  This bench compares the
*cost* of all three variants per epoch, per framework.
"""

from conftest import emit

from repro.bench import format_series
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed

DATASETS = ("flickr", "reddit")


def _epoch_time(fw_name: str, dataset: str, kind: str, reps: int = 4) -> float:
    machine = paper_testbed()
    fw = get_framework(fw_name)
    fgraph = fw.load(dataset, machine)
    if kind == "saint_rw":
        sampler = fw.saint_sampler(fgraph, seed=0)
    else:
        sampler = fw.extension_sampler(fgraph, kind, seed=0)
    batches = sampler.num_batches()
    start = machine.clock.now
    iterator = iter(sampler.epoch())
    ran = 0
    for _ in range(min(reps, batches)):
        if next(iterator, None) is None:
            break
        ran += 1
    elapsed = machine.clock.now - start
    return elapsed * batches / max(1, ran)


def test_ablation_saint_variants(once):
    def run():
        out = {}
        for fw in ("dglite", "pyglite"):
            for kind in ("saint_rw", "saint_node", "saint_edge"):
                out[f"{kind}/{fw}"] = {
                    ds: _epoch_time(fw, ds, kind) for ds in DATASETS
                }
        return out

    results = once(run)
    emit("ablation_saint_variants",
         format_series("Ablation: GraphSAINT sampler variants (per epoch)",
                       results, unit="s"))

    for fw in ("dglite", "pyglite"):
        for ds in DATASETS:
            rw = results[f"saint_rw/{fw}"][ds]
            node = results[f"saint_node/{fw}"][ds]
            edge = results[f"saint_edge/{fw}"][ds]
            # All three variants are the same order of magnitude — the
            # walk's advantage in the original paper is accuracy, not cost.
            assert max(rw, node, edge) < 25 * min(rw, node, edge), (fw, ds)
        # DGL's native implementation is cheaper for every variant.
        for kind in ("saint_rw", "saint_node", "saint_edge"):
            for ds in DATASETS:
                assert (results[f"{kind}/dglite"][ds]
                        < results[f"{kind}/pyglite"][ds]), (kind, ds)
