"""Inline suppression comments: ``# repro-lint: disable=RULE``.

Two forms are recognized:

* ``# repro-lint: disable=RULE1,RULE2`` — silences those rules for the
  statement on that physical line.  Because a finding records the full
  line *span* of the offending expression, the comment may sit on any
  line of a multi-line expression.
* ``# repro-lint: disable-file=RULE1,RULE2`` — silences those rules for
  the whole file (any line).

``disable=all`` / ``disable-file=all`` silence every rule.  Trailing
free text after the rule list (a justification) is encouraged and
ignored by the parser::

    probs = counts.astype(np.float64)  # repro-lint: disable=DTYPE-DRIFT choice() needs f64

Suppressions are extracted with :mod:`tokenize` so strings that merely
*contain* the marker are never misread as comments.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Set, Tuple

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\-]+)"
)


@dataclass
class SuppressionIndex:
    """Per-file map of which rules are silenced on which lines."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_level: Set[str] = field(default_factory=set)

    def add(self, line: int, rules: Set[str]) -> None:
        self.by_line.setdefault(line, set()).update(rules)

    def is_suppressed(self, rule: str, span: Tuple[int, int]) -> bool:
        rule = rule.upper()
        if "ALL" in self.file_level or rule in self.file_level:
            return True
        lo, hi = span
        if hi < lo:
            lo, hi = hi, lo
        for line in range(lo, hi + 1):
            tags = self.by_line.get(line)
            if tags and ("ALL" in tags or rule in tags):
                return True
        return False


def _parse_rules(spec: str) -> Set[str]:
    return {name.strip().upper() for name in spec.split(",") if name.strip()}


@lru_cache(maxsize=512)
def suppressions_for_source(source: str) -> SuppressionIndex:
    """Scan ``source`` for suppression comments.

    Unreadable/untokenizable sources yield an empty index — the engine
    reports the syntax error separately; suppressions just stay inert.

    Memoized on the source text: the deep pass re-filters findings per
    file after the flat pass already scanned it, and repeated engine
    runs in one process (tests, editors) hit the same sources — the
    tokenize pass runs once per distinct file content.  Callers must
    treat the returned index as read-only.
    """
    index = SuppressionIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(tok.string)
            if not match:
                continue
            rules = _parse_rules(match.group("rules"))
            if match.group("kind") == "disable-file":
                index.file_level.update(rules)
            else:
                index.add(tok.start[0], rules)
    except (tokenize.TokenError, IndentationError):
        pass
    return index
