"""The adjacency wrapper sparse kernels operate on.

A :class:`SparseAdj` describes a (possibly bipartite) directed edge set in
"aggregate src -> dst" orientation, with

* real scipy CSR math storage (rows = dst) for fast SpMM,
* aligned COO arrays for per-edge kernels (edge order == CSR data order),
* the device the structure lives on, and
* logical scale factors so charged work is paper-scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphFormatError
from repro.graph.formats import INDEX_DTYPE


class SparseAdj:
    """Edge set src->dst with CSR-by-destination math storage."""

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_src: int,
        num_dst: int,
        device=None,
        node_scale: float = 1.0,
        edge_scale: float = 1.0,
        edge_weight: Optional[np.ndarray] = None,
    ) -> None:
        src = np.asarray(src, dtype=INDEX_DTYPE)
        dst = np.asarray(dst, dtype=INDEX_DTYPE)
        if src.shape != dst.shape:
            raise GraphFormatError("src and dst must have equal length")
        if src.size and (src.max() >= num_src or src.min() < 0):
            raise GraphFormatError("src index out of range")
        if dst.size and (dst.max() >= num_dst or dst.min() < 0):
            raise GraphFormatError("dst index out of range")
        # Canonical edge order: sorted by (dst, then original position) so
        # CSR data positions line up with the stored COO arrays.
        order = np.argsort(dst, kind="stable")
        self.src = src[order]
        self.dst = dst[order]
        self.num_src = int(num_src)
        self.num_dst = int(num_dst)
        self.device = device
        self.node_scale = float(node_scale)
        self.edge_scale = float(edge_scale)
        if edge_weight is not None:
            edge_weight = np.asarray(edge_weight, dtype=np.float32)[order]
        self.edge_weight = edge_weight

        indptr = np.zeros(self.num_dst + 1, dtype=INDEX_DTYPE)
        indptr[1:] = np.cumsum(np.bincount(self.dst, minlength=self.num_dst))
        data = edge_weight if edge_weight is not None else np.ones(self.src.size, dtype=np.float32)
        self._mat = sp.csr_matrix(
            (data, self.src, indptr), shape=(self.num_dst, self.num_src)
        )
        self._mat_t: Optional[sp.csr_matrix] = None

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def logical_num_edges(self) -> float:
        return self.num_edges * self.edge_scale

    @property
    def logical_num_src(self) -> float:
        return self.num_src * self.node_scale

    @property
    def logical_num_dst(self) -> float:
        return self.num_dst * self.node_scale

    @property
    def indptr(self) -> np.ndarray:
        return self._mat.indptr

    def matmul_data(self, data: Optional[np.ndarray], x: np.ndarray) -> np.ndarray:
        """``out[d] = sum_e data[e] * x[src[e]]`` using the CSR structure.

        ``data`` must follow this adjacency's canonical edge order; ``None``
        means unweighted (stored weights if any, else ones).
        """
        if data is None:
            mat = self._mat
        else:
            mat = sp.csr_matrix(
                (np.asarray(data, dtype=np.float32), self._mat.indices, self._mat.indptr),
                shape=self._mat.shape,
            )
        return np.asarray(mat @ x, dtype=np.float32)

    def rmatmul(self, grad: np.ndarray, data: Optional[np.ndarray] = None) -> np.ndarray:
        """``out[s] = sum_e data[e] * grad[dst[e]]`` (the SpMM backward)."""
        if data is None:
            if self._mat_t is None:
                self._mat_t = self._mat.T.tocsr()
            return np.asarray(self._mat_t @ grad, dtype=np.float32)
        mat = sp.csr_matrix(
            (np.asarray(data, dtype=np.float32), self._mat.indices, self._mat.indptr),
            shape=self._mat.shape,
        )
        return np.asarray(mat.T @ grad, dtype=np.float32)

    def in_degrees(self) -> np.ndarray:
        return np.diff(self._mat.indptr).astype(INDEX_DTYPE)

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.src, minlength=self.num_src).astype(INDEX_DTYPE)

    def with_device(self, device) -> "SparseAdj":
        """Shallow re-placement onto another device (structure is shared)."""
        clone = object.__new__(SparseAdj)
        clone.__dict__ = dict(self.__dict__)
        clone.device = device
        return clone

    @classmethod
    def from_graph(cls, graph, device=None, reverse: bool = False) -> "SparseAdj":
        """Full-graph adjacency in aggregate-orientation from a Graph.

        ``reverse=False`` aggregates along stored edge direction
        (src -> dst); datasets here are symmetrized so direction is moot.
        """
        coo = graph.adj.to_coo()
        src, dst = (coo.dst, coo.src) if reverse else (coo.src, coo.dst)
        return cls(
            src,
            dst,
            num_src=graph.num_nodes,
            num_dst=graph.num_nodes,
            device=device,
            node_scale=graph.node_scale,
            edge_scale=graph.edge_scale,
        )

    def structure_nbytes(self) -> float:
        """Logical bytes of this structure (for transfer charging)."""
        return 8.0 * (self.logical_num_dst + 1) + 8.0 * self.logical_num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseAdj({self.num_src}->{self.num_dst}, E={self.num_edges}, "
            f"device={getattr(self.device, 'name', None)})"
        )
