"""Tests for carbon accounting and Chrome-trace export."""

import json

import pytest

from repro.hardware.device import KernelCost
from repro.power.carbon import GRID_INTENSITY, CarbonReport, carbon_from_energy
from repro.power.monitor import EnergyMonitor
from repro.profiling.trace import summarize_trace, trace_events, write_trace


def _report(machine, busy_seconds=1.0):
    monitor = EnergyMonitor(machine, interval=0.1)
    monitor.start()
    machine.cpu.execute(KernelCost("work", fixed_time=busy_seconds))
    return monitor.stop()


class TestCarbon:
    def test_grams_formula(self, machine):
        report = _report(machine)
        carbon = carbon_from_energy(report, grid="texas", pue=1.5)
        expected = report.total_energy / 3.6e6 * 1.5 * GRID_INTENSITY["texas"]
        assert carbon.grams_co2eq == pytest.approx(expected)

    def test_cleaner_grid_emits_less(self, machine):
        report = _report(machine)
        texas = carbon_from_energy(report, grid="texas")
        sweden = carbon_from_energy(report, grid="sweden")
        assert sweden.grams_co2eq < texas.grams_co2eq

    def test_pue_uplift(self, machine):
        report = _report(machine)
        bare = carbon_from_energy(report, pue=1.0)
        dc = carbon_from_energy(report, pue=2.0)
        assert dc.grams_co2eq == pytest.approx(2 * bare.grams_co2eq)

    def test_unknown_grid_rejected(self, machine):
        with pytest.raises(KeyError):
            carbon_from_energy(_report(machine), grid="mars")

    def test_sub_unity_pue_rejected(self, machine):
        with pytest.raises(ValueError):
            carbon_from_energy(_report(machine), pue=0.9)

    def test_kg_and_km_equivalents(self):
        carbon = CarbonReport(energy_kwh=1.0, grid="world",
                              intensity=192.0, pue=1.0)
        assert carbon.kg_co2eq == pytest.approx(0.192)
        assert carbon.equivalent_km_driven() == pytest.approx(1.0)

    def test_longer_run_emits_more(self, machine):
        short = carbon_from_energy(_report(machine, 0.5))
        long = carbon_from_energy(_report(machine, 2.0))
        assert long.grams_co2eq > short.grams_co2eq


class TestTrace:
    def test_events_cover_busy_intervals(self, machine):
        machine.cpu.execute(KernelCost("gemm", fixed_time=0.5))
        machine.pcie.h2d(1e9, tag="features")
        events = trace_events(machine.clock)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "gemm" in names and "features" in names

    def test_lane_metadata_present(self, machine):
        machine.cpu.execute(KernelCost("k", fixed_time=0.1))
        events = trace_events(machine.clock)
        metas = [e for e in events if e["ph"] == "M"]
        assert any(m["args"]["name"] == machine.cpu.name for m in metas)

    def test_timestamps_in_microseconds(self, machine):
        machine.clock.advance(1.0)
        machine.cpu.execute(KernelCost("k", fixed_time=0.25))
        event = next(e for e in trace_events(machine.clock) if e["ph"] == "X")
        assert event["ts"] == pytest.approx(1.0e6)
        assert event["dur"] == pytest.approx(0.25e6, rel=1e-3)

    def test_write_trace_roundtrips(self, machine, tmp_path):
        machine.cpu.execute(KernelCost("k", fixed_time=0.1))
        path = write_trace(machine.clock, tmp_path / "deep" / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert payload["metadata"]["source"].startswith("repro")

    def test_summary_totals_match_busy_time(self, machine):
        machine.cpu.execute(KernelCost("k", fixed_time=0.4))
        machine.gpu.execute(KernelCost("k", fixed_time=0.2))
        summary = summarize_trace(machine.clock)
        assert summary["device_busy"][machine.cpu.name] == pytest.approx(0.4, rel=1e-3)
        assert summary["device_busy"][machine.gpu.name] == pytest.approx(0.2, rel=1e-3)
        assert summary["wall"] == machine.clock.now

    def test_trace_of_real_experiment(self, tmp_path):
        """End-to-end: a training run produces a valid, non-trivial trace."""
        from repro.frameworks import get_framework
        from repro.hardware.machine import paper_testbed
        from repro.models.graphsage import build_graphsage, graphsage_sampler
        from repro.models.trainer import MiniBatchTrainer, TrainConfig
        machine = paper_testbed()
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        sampler = graphsage_sampler(fw, fgraph, seed=0)
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
        MiniBatchTrainer(fw, fgraph, sampler, net,
                         TrainConfig(epochs=1, representative_batches=2)).run()
        path = write_trace(machine.clock, tmp_path / "run.json")
        events = json.loads(path.read_text())["traceEvents"]
        assert len(events) > 50
