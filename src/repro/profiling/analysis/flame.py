"""Deterministic folded-stack flamegraph of the span tree.

One line per unique root-to-span path — ``a;b;c <microseconds>`` — in
the classic Brendan-Gregg folded format every flamegraph renderer eats.
The value is the span's *exclusive* virtual time (its duration minus its
children's, plus any credited extrapolation) rounded to integer
microseconds, and lines are emitted in sorted path order, so two
same-seed runs fold to byte-identical output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Path separator of the folded format; span names never contain it
#: (telemetry naming convention uses dots).
SEPARATOR = ";"


def folded_stacks(span_records: Sequence[dict]) -> Dict[str, int]:
    """Path -> exclusive virtual microseconds, aggregated over the run."""
    by_id = {r["id"]: r for r in span_records}
    child_dur: Dict[object, float] = {}
    for record in span_records:
        parent = record.get("parent")
        if parent is not None:
            child_dur[parent] = child_dur.get(parent, 0.0) \
                + float(record.get("dur", 0.0))
    paths: Dict[str, int] = {}
    for record in span_records:
        exclusive = float(record.get("dur", 0.0)) \
            - child_dur.get(record["id"], 0.0) \
            + float(record.get("credited", 0.0))
        micros = int(round(max(0.0, exclusive) * 1e6))
        if micros <= 0:
            continue
        path = _span_path(record, by_id)
        paths[path] = paths.get(path, 0) + micros
    return paths


def _span_path(record: dict, by_id: Dict[object, dict]) -> str:
    names: List[str] = []
    seen = set()
    current = record
    while current is not None and current["id"] not in seen:
        seen.add(current["id"])
        names.append(str(current.get("name", "?")))
        parent = current.get("parent")
        current = by_id.get(parent) if parent is not None else None
    return SEPARATOR.join(reversed(names))


def render_folded(paths: Dict[str, int]) -> str:
    """The folded text file: one sorted ``path value`` line per stack."""
    lines = [f"{path} {value}" for path, value in sorted(paths.items())]
    return "\n".join(lines) + ("\n" if lines else "")
