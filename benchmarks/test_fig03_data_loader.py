"""Figure 3: runtime of the data loader, DGL vs PyG, all six datasets."""

from conftest import DATASETS, FRAMEWORKS, emit

from repro.bench import format_series, measure_data_loader


def test_fig03_data_loader(once):
    def run():
        return {
            fw: {ds: measure_data_loader(fw, ds) for ds in DATASETS}
            for fw in FRAMEWORKS
        }

    results = once(run)
    emit("fig03_data_loader",
         format_series("Figure 3: data loader runtime", results, unit="s"))

    # Observation 1: PyG's loader is more efficient on every dataset.
    for ds in DATASETS:
        assert results["pyglite"][ds] < results["dglite"][ds], ds

    # Loading cost grows with dataset size within each framework.
    for fw in FRAMEWORKS:
        assert results[fw]["ogbn-products"] > results[fw]["ppi"]
