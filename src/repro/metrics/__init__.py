"""Efficiency metrics: GPS-UP (Speedup, Greenup, Powerup)."""

from repro.metrics.gpsup import GpsUp, gps_up

__all__ = ["GpsUp", "gps_up"]
