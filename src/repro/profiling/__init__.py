"""Runtime profiling over the virtual clock (the pyinstrument substitute)."""

from repro.profiling.profiler import PhaseProfiler, PHASES
from repro.profiling.report import BreakdownReport, format_breakdown_table

__all__ = ["BreakdownReport", "PHASES", "PhaseProfiler", "format_breakdown_table"]
