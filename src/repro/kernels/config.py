"""Kernel fast-path toggle.

The kernel layer keeps two numerically-equivalent implementations of every
hot primitive:

* the **fast path** — ``np.add.reduceat`` segment reduction over the
  adjacency's dst-sorted edge order, in-place CSR ``.data`` swaps, cached
  transpose structure / degrees, and the validated
  :meth:`~repro.kernels.adj.SparseAdj.from_sorted_block` constructor;
* the **reference path** — the straightforward ``np.add.at`` /
  scipy-rebuild idioms the repo originally shipped.

Both charge identical logical cost (``charge(...)`` depends only on
logical edge/node counts, never on how the arithmetic was scheduled), so
toggling affects wall-clock only.  The reference path stays in-tree so
the equivalence suite and the ablation benchmark can diff the two at
runtime, and so the paper-scale numbers are auditable against the naive
formulation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_fastpath = True


def fastpath_enabled() -> bool:
    """True when the kernel fast paths are active (the default)."""
    return _fastpath


def kernel_mode() -> str:
    """The active schedule as a label: ``"fast"`` or ``"reference"``.

    Benchmark artifacts (``BENCH_*.json``) and telemetry provenance use
    this to record which schedule produced a measurement.
    """
    return "fast" if _fastpath else "reference"


@contextmanager
def use_reference_kernels() -> Iterator[None]:
    """Run the enclosed block on the naive reference kernels.

    Used by the equivalence tests and the ablation benchmark; nesting is
    fine (the previous state is restored on exit).
    """
    global _fastpath
    previous = _fastpath
    _fastpath = False
    try:
        yield
    finally:
        _fastpath = previous
