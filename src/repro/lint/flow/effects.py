"""Interprocedural effect summaries over the facts lattice.

Each function gets one :class:`Summary` — a point in a finite product
lattice (booleans ordered False ⊑ True, sets by inclusion) — computed to
a least fixpoint over the call graph by :mod:`repro.lint.flow.solver`:

* ``charges`` — some statement reaches a virtual-clock charge primitive,
  directly or through any resolved callee;
* ``may_raise`` — protected exceptions (:data:`PROTECTED_EXCEPTIONS`)
  that can escape the function: direct raises plus callee ``may_raise``,
  minus whatever enclosing handlers absorb at each site;
* ``returns_rng`` / ``returns_param`` / ``param_attr_stores`` — RNG
  provenance: does the return value carry an unseeded generator, which
  parameters flow through to the return value unchanged, and which
  parameters get stored onto ``self.<attr>``;
* ``returns_open_span`` — the return value is an open telemetry span
  (a ``start_span`` result, transitively);
* ``reads_cache`` / ``invalidates_cache`` — touches SparseAdj's derived
  caches / resets them to ``None``.

RNG taint through *attributes* needs a global map (class attr → tainted)
that itself depends on summaries, so :func:`compute_summaries` iterates
summary-fixpoint → attr collection until the attr map stabilizes (in
practice one extra round).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.flow.callgraph import FunctionInfo, Program, dotted
from repro.lint.flow.facts import (
    CACHE_ACCESSORS, CACHE_SLOTS, PROTECTED_EXCEPTIONS, SPAN_OPEN_LEAF,
    CallSite, FunctionFacts,
)
from repro.lint.flow.solver import fixpoint

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: (class qualname, attribute) -> qualname of the function that tainted it.
RngAttrMap = Dict[Tuple[str, str], str]


@dataclass(frozen=True)
class Summary:
    """One function's externally-visible effects."""

    charges: bool = False
    may_raise: FrozenSet[str] = frozenset()
    returns_rng: bool = False
    returns_param: FrozenSet[int] = frozenset()
    param_attr_stores: FrozenSet[Tuple[int, str]] = frozenset()
    returns_open_span: bool = False
    reads_cache: bool = False
    invalidates_cache: bool = False


BOTTOM = Summary()


def _param_names(info: FunctionInfo) -> List[str]:
    args = info.node.args
    return [a.arg for a in
            list(getattr(args, "posonlyargs", [])) + args.args
            + list(args.kwonlyargs)]


def _iter_own_nodes(fn_node: ast.AST):
    """Walk a function body without descending into nested definitions."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, _FN_NODES) or isinstance(node, ast.ClassDef):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _reads_cache_directly(info: FunctionInfo) -> bool:
    for node in _iter_own_nodes(info.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr in CACHE_ACCESSORS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in CACHE_SLOTS \
                and isinstance(node.ctx, ast.Load):
            return True
    return False


def _invalidates_cache_directly(info: FunctionInfo) -> bool:
    for node in _iter_own_nodes(info.node):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Constant) \
                and node.value.value is None:
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr in CACHE_SLOTS:
                    return True
    return False


class _TaintPass:
    """Intra-procedural RNG/span value taint, given callee summaries.

    Statements are visited in source order, twice, so taint introduced by
    a later-defined local still reaches uses inside loops.  Nested
    function definitions are skipped — they are summarized separately.
    """

    def __init__(self, facts: FunctionFacts, state: Dict[str, Summary],
                 rng_attrs: RngAttrMap) -> None:
        self.facts = facts
        self.state = state
        self.rng_attrs = rng_attrs
        self.site_by_node = {id(s.node): s for s in facts.calls}
        self.rng_source_ids = {id(n) for n in facts.rng_sources}
        self.params = _param_names(facts.info)
        self.rng_vars: Set[str] = set()
        self.span_vars: Set[str] = set()
        self.returns_rng = False
        self.returns_span = False
        self.returns_param: Set[int] = set()
        self.param_attr_stores: Set[Tuple[int, str]] = set()
        self.attr_stores: Set[str] = set()  # rng-tainted self attributes

    def run(self) -> None:
        for _ in range(2):
            self._stmts(self.facts.info.node.body)

    # -- taint predicates ------------------------------------------------
    def _callee_summaries(self, node: ast.AST) -> List[Summary]:
        site = self.site_by_node.get(id(node))
        if site is None:
            return []
        return [self.state.get(c, BOTTOM) for c in site.callees]

    def rng_value(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.rng_vars
        if isinstance(expr, ast.Attribute) and self.facts.info.cls \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self":
            return (self.facts.info.cls, expr.attr) in self.rng_attrs
        if isinstance(expr, ast.Call):
            if id(expr) in self.rng_source_ids:
                return True
            for summary in self._callee_summaries(expr):
                if summary.returns_rng:
                    return True
                offset = 1 if isinstance(expr.func, ast.Attribute) else 0
                for i, arg in enumerate(expr.args):
                    if i + offset in summary.returns_param \
                            and self.rng_value(arg):
                        return True
        return False

    def span_value(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.span_vars
        if isinstance(expr, ast.Call):
            name = dotted(expr.func)
            if name.rpartition(".")[2] == SPAN_OPEN_LEAF:
                return True
            return any(s.returns_open_span
                       for s in self._callee_summaries(expr))
        return False

    # -- statement walk --------------------------------------------------
    def _stmts(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, _FN_NODES) or isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, ast.Assign):
                self._assign(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign([stmt.target], stmt.value)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if self.rng_value(stmt.value):
                    self.returns_rng = True
                if self.span_value(stmt.value):
                    self.returns_span = True
                if isinstance(stmt.value, ast.Name) \
                        and stmt.value.id in self.params:
                    self.returns_param.add(self.params.index(stmt.value.id))
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, attr, None)
                if isinstance(nested, list):
                    self._stmts(nested)
            for handler in getattr(stmt, "handlers", []) or []:
                self._stmts(handler.body)

    def _assign(self, targets: List[ast.AST], value: ast.AST) -> None:
        rng = self.rng_value(value)
        span = self.span_value(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if rng:
                    self.rng_vars.add(target.id)
                else:
                    self.rng_vars.discard(target.id)
                if span:
                    self.span_vars.add(target.id)
                else:
                    self.span_vars.discard(target.id)
            elif isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                if rng:
                    self.attr_stores.add(target.attr)
                if isinstance(value, ast.Name) and value.id in self.params:
                    self.param_attr_stores.add(
                        (self.params.index(value.id), target.attr))


def _transfer(qualname: str, state: Dict[str, Summary],
              facts_map: Dict[str, FunctionFacts],
              rng_attrs: RngAttrMap,
              direct_reads: Dict[str, bool],
              direct_invalidates: Dict[str, bool]) -> Summary:
    facts = facts_map[qualname]
    charges = bool(facts.charges)
    may_raise: Set[str] = {r.name for r in facts.raises
                           if r.name not in r.caught}
    reads = direct_reads[qualname]
    invalidates = direct_invalidates[qualname]
    for site in facts.calls:
        for callee in site.callees:
            summary = state.get(callee, BOTTOM)
            charges = charges or summary.charges
            may_raise |= summary.may_raise - site.caught
            reads = reads or summary.reads_cache
            invalidates = invalidates or summary.invalidates_cache
    taint = _TaintPass(facts, state, rng_attrs)
    taint.run()
    return Summary(
        charges=charges,
        may_raise=frozenset(may_raise & PROTECTED_EXCEPTIONS),
        returns_rng=taint.returns_rng,
        returns_param=frozenset(taint.returns_param),
        param_attr_stores=frozenset(taint.param_attr_stores),
        returns_open_span=taint.returns_span,
        reads_cache=reads,
        invalidates_cache=invalidates,
    )


def _collect_rng_attrs(facts_map: Dict[str, FunctionFacts],
                       state: Dict[str, Summary]) -> RngAttrMap:
    """Tainted (class, attr) pairs: direct stores plus parameters that a
    callee stores onto its own instance when called with a tainted arg."""
    attrs: RngAttrMap = {}
    rng_attrs_prev: RngAttrMap = {}
    for qualname in sorted(facts_map):
        facts = facts_map[qualname]
        taint = _TaintPass(facts, state, rng_attrs_prev)
        taint.run()
        if facts.info.cls:
            for attr in sorted(taint.attr_stores):
                attrs.setdefault((facts.info.cls, attr), qualname)
        for site in facts.calls:
            for callee in site.callees:
                summary = state.get(callee, BOTTOM)
                if not summary.param_attr_stores:
                    continue
                offset = 1 if isinstance(site.node, ast.Call) \
                    and isinstance(site.node.func, ast.Attribute) else 0
                for index, attr in sorted(summary.param_attr_stores):
                    arg_index = index - offset
                    args = getattr(site.node, "args", [])
                    if 0 <= arg_index < len(args) \
                            and taint.rng_value(args[arg_index]):
                        cls = _callee_class(callee)
                        if cls:
                            attrs.setdefault((cls, attr), qualname)
    return attrs


def _callee_class(qualname: str) -> Optional[str]:
    # "module:Class.method" -> "module:Class"
    module, _, qpath = qualname.partition(":")
    owner, _, _ = qpath.rpartition(".")
    return f"{module}:{owner}" if owner and "<locals>" not in owner else None


def compute_summaries(
        program: Program,
        facts_map: Dict[str, FunctionFacts],
) -> Tuple[Dict[str, Summary], RngAttrMap]:
    """Fixpoint summaries plus the global RNG-tainted-attribute map."""
    deps = {q: sorted({c for site in f.calls for c in site.callees})
            for q, f in facts_map.items()}
    direct_reads = {q: _reads_cache_directly(f.info)
                    for q, f in facts_map.items()}
    direct_invalidates = {q: _invalidates_cache_directly(f.info)
                          for q, f in facts_map.items()}
    rng_attrs: RngAttrMap = {}
    state: Dict[str, Summary] = {}
    for _ in range(3):
        state = fixpoint(
            facts_map.keys(), deps,
            lambda q, s: _transfer(q, s, facts_map, rng_attrs,
                                   direct_reads, direct_invalidates),
            lambda q: BOTTOM)
        new_attrs = _collect_rng_attrs(facts_map, state)
        if new_attrs == rng_attrs:
            break
        rng_attrs = new_attrs
    return state, rng_attrs


def charged_context(facts_map: Dict[str, FunctionFacts],
                    summaries: Dict[str, Summary]) -> Dict[str, bool]:
    """Least fixpoint of: ICC(f) ⇔ f has callers and every caller either
    charges itself or is in charged context.  A function that is true
    here delegates its cost accounting upward by design (e.g. SparseAdj
    segment reductions, charged by every kernel that calls them)."""
    callers: Dict[str, Set[str]] = {}
    for qualname, facts in facts_map.items():
        for site in facts.calls:
            for callee in site.callees:
                callers.setdefault(callee, set()).add(qualname)
    deps = {q: sorted(callers.get(q, ())) for q in facts_map}

    def transfer(q: str, state: Dict[str, bool]) -> bool:
        cs = callers.get(q)
        if not cs:
            return False
        return all(summaries.get(c, BOTTOM).charges or state.get(c, False)
                   for c in cs)

    return fixpoint(facts_map.keys(), deps, transfer, lambda q: False)
