"""Tests for the partial GPU feature cache."""

import numpy as np
import pytest

from repro.errors import BenchmarkError, DeviceError
from repro.frameworks import get_framework
from repro.frameworks.feature_cache import GpuFeatureCache
from repro.hardware.machine import cpu_only_testbed, paper_testbed


@pytest.fixture
def fgraph(machine):
    return get_framework("dglite").load("ppi", machine, scale=0.3)


class TestConstruction:
    def test_fraction_bounds(self, fgraph):
        with pytest.raises(ValueError):
            GpuFeatureCache(fgraph, fraction=0.0)
        with pytest.raises(ValueError):
            GpuFeatureCache(fgraph, fraction=1.5)

    def test_unknown_policy(self, fgraph):
        with pytest.raises(ValueError):
            GpuFeatureCache(fgraph, policy="lfu")

    def test_requires_gpu(self):
        machine = cpu_only_testbed()
        fgraph = get_framework("dglite").load("ppi", machine, scale=0.3)
        with pytest.raises(DeviceError):
            GpuFeatureCache(fgraph)

    def test_capacity_matches_fraction(self, fgraph):
        cache = GpuFeatureCache(fgraph, fraction=0.25)
        expected = round(0.25 * fgraph.num_nodes)
        assert cache.capacity_nodes == expected

    def test_fill_charges_transfer_and_pins_memory(self, fgraph, machine):
        before_bytes = machine.pcie.counters.bytes_h2d
        before_mem = machine.gpu.memory.in_use
        cache = GpuFeatureCache(fgraph, fraction=0.5)
        assert machine.pcie.counters.bytes_h2d > before_bytes
        assert machine.gpu.memory.in_use > before_mem
        cache.release()
        assert machine.gpu.memory.in_use == before_mem

    def test_degree_policy_caches_hubs(self, fgraph):
        cache = GpuFeatureCache(fgraph, fraction=0.1, policy="degree")
        degrees = fgraph.graph.adj.degrees()
        assert degrees[cache.cached_nodes].mean() > degrees.mean()


class TestLookups:
    def test_hit_mask(self, fgraph):
        cache = GpuFeatureCache(fgraph, fraction=0.3, policy="degree")
        nodes = np.arange(fgraph.num_nodes)
        mask = cache.hit_mask(nodes)
        assert mask.sum() == cache.capacity_nodes

    def test_hit_mask_is_pure(self, fgraph):
        """Repeated probes of the same batch must not skew hit_rate."""
        cache = GpuFeatureCache(fgraph, fraction=0.3, policy="degree")
        nodes = np.arange(fgraph.num_nodes)
        cache.hit_mask(nodes)
        cache.hit_mask(nodes)
        assert cache.hits == 0 and cache.misses == 0
        assert cache.hit_rate() == 0.0

    def test_record_counts_once_per_call(self, fgraph):
        cache = GpuFeatureCache(fgraph, fraction=0.3, policy="degree")
        nodes = np.arange(fgraph.num_nodes)
        mask = cache.record(nodes)
        assert np.array_equal(mask, cache.hit_mask(nodes))
        assert cache.hits == cache.capacity_nodes
        assert cache.hits + cache.misses == nodes.size
        cache.record(nodes)
        assert cache.hits + cache.misses == 2 * nodes.size

    def test_hit_rate_accumulates(self, fgraph):
        cache = GpuFeatureCache(fgraph, fraction=0.5, policy="random", seed=0)
        cache.record(np.arange(fgraph.num_nodes))
        assert cache.hit_rate() == pytest.approx(0.5, abs=0.02)

    def test_degree_cache_beats_random_on_sampled_batches(self, fgraph):
        """The whole point: hubs appear in most sampled neighborhoods."""
        fw = fgraph.framework
        degree_cache = GpuFeatureCache(fgraph, fraction=0.15, policy="degree")
        random_cache = GpuFeatureCache(fgraph, fraction=0.15, policy="random",
                                       seed=1)
        sampler = fw.neighbor_sampler(fgraph, seed=0)
        for batch in list(sampler.epoch())[:5]:
            degree_cache.record(batch.input_nodes)
            random_cache.record(batch.input_nodes)
        assert degree_cache.hit_rate() > random_cache.hit_rate()


class TestTrainerIntegration:
    def _run(self, fraction):
        from repro.bench import run_training_experiment
        return run_training_experiment(
            "dglite", "reddit", "graphsage", placement="cpugpu",
            epochs=2, representative_batches=2,
            feature_cache_fraction=fraction,
        )

    def test_cache_reduces_movement_monotonically(self):
        base = self._run(0.0)
        half = self._run(0.5)
        full = self._run(1.0)
        assert full.phases["data_movement"] < half.phases["data_movement"]
        assert half.phases["data_movement"] < base.phases["data_movement"]

    def test_label_carries_fraction(self):
        assert self._run(0.25).label == "DGL-CPUGPU+cache25"

    def test_cache_with_preload_rejected(self):
        from repro.bench import run_training_experiment
        with pytest.raises(BenchmarkError):
            run_training_experiment("dglite", "ppi", "graphsage",
                                    placement="cpugpu", preload=True,
                                    feature_cache_fraction=0.5)

    def test_cache_with_prefetch_rejected(self, fgraph):
        from repro.models.graphsage import build_graphsage, graphsage_sampler
        from repro.models.trainer import MiniBatchTrainer, TrainConfig
        fw = fgraph.framework
        cache = GpuFeatureCache(fgraph, fraction=0.5)
        sampler = graphsage_sampler(fw, fgraph, seed=0)
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
        with pytest.raises(BenchmarkError):
            MiniBatchTrainer(fw, fgraph, sampler, net,
                             TrainConfig(placement="cpugpu", prefetch=True),
                             feature_cache=cache)


class TestDeterminism:
    """Regression tests for the stable degree-policy selection order.

    np.argsort on -degrees is an unstable sort: nodes with equal degree
    could land in the cache or not depending on partition order, which
    made `cached_nodes` (and every downstream hit/miss count) vary
    between constructions.  The policy now tie-breaks on node id via
    np.lexsort.
    """

    def test_degree_policy_identical_across_constructions(self, fgraph):
        selections = [
            GpuFeatureCache(fgraph, fraction=0.2, policy="degree").cached_nodes
            for _ in range(3)
        ]
        assert np.array_equal(selections[0], selections[1])
        assert np.array_equal(selections[1], selections[2])

    def test_degree_ties_break_toward_lower_node_id(self, fgraph):
        cache = GpuFeatureCache(fgraph, fraction=0.2, policy="degree")
        degrees = fgraph.graph.adj.degrees()
        cached = set(cache.cached_nodes.tolist())
        boundary = degrees[cache.cached_nodes].min()
        # Among boundary-degree nodes, the cached ones must be exactly
        # the lowest-id prefix: no higher id in, lower id out.
        tied = np.flatnonzero(degrees == boundary)
        tied_cached = sorted(n for n in tied.tolist() if n in cached)
        assert tied_cached == tied.tolist()[:len(tied_cached)]

    @pytest.mark.parametrize("policy", ("degree", "random"))
    def test_hits_plus_misses_is_total(self, fgraph, policy, rng):
        """Property: record() partitions every probe into hits + misses."""
        cache = GpuFeatureCache(fgraph, fraction=0.3, policy=policy, seed=0)
        total = 0
        for _ in range(20):
            nodes = rng.integers(0, fgraph.num_nodes,
                                 size=int(rng.integers(1, 200)))
            mask = cache.hit_mask(nodes)
            before = (cache.hits, cache.misses)
            recorded = cache.record(nodes)
            assert np.array_equal(mask, recorded)
            assert cache.hits - before[0] == int(mask.sum())
            assert cache.misses - before[1] == int((~mask).sum())
            total += nodes.size
        assert cache.hits + cache.misses == total

    def test_counters_byte_identical_in_prometheus_text(self):
        """Two same-seed runs must export identical feature_cache lines."""
        from repro.telemetry.runtime import session as telemetry_session

        def one_run():
            machine = paper_testbed()
            fgraph = get_framework("dglite").load("ppi", machine, scale=0.3)
            with telemetry_session(machine.clock) as sess:
                cache = GpuFeatureCache(fgraph, fraction=0.3,
                                        policy="degree", seed=0)
                sampler = fgraph.framework.neighbor_sampler(fgraph, seed=0)
                for batch in list(sampler.epoch())[:3]:
                    cache.record(batch.input_nodes)
                text = sess.metrics.prometheus_text()
            return "\n".join(line for line in text.splitlines()
                             if "feature_cache" in line)

        first, second = one_run(), one_run()
        assert "feature_cache" in first
        assert first.encode() == second.encode()
