"""Fast-path vs. reference-path equivalence for the kernel layer.

Every kernel in ``repro.kernels`` has two arithmetic schedules: the default
fast path (``np.add.reduceat`` segment reduction, reusable CSR buffers,
cached transpose/degrees) and the reference path (``np.add.at`` /
per-call scipy rebuilds) selected by ``use_reference_kernels()``.  These
tests assert the two schedules agree to 1e-6 on values and gradients —
including empty blocks, isolated nodes, multi-head features, and weighted
edges — and that the *charged* cost model is bit-for-bit identical across
schedules (the paper's measurements must not depend on which schedule ran).
"""

import numpy as np
import pytest

from repro import telemetry
from repro.errors import GraphFormatError
from repro.bench.harness import run_training_experiment
from repro.frameworks.common import with_self_loops
from repro.graph.formats import AdjacencyCOO, induced_subgraph
from repro.hardware import paper_testbed
from repro.kernels.adj import SparseAdj
from repro.kernels.config import fastpath_enabled, use_reference_kernels
from repro.kernels.scatter import gather, scatter_add, scatter_mean
from repro.kernels.sddmm import (
    fused_gatv2_scores,
    sddmm_u_add_v,
    sddmm_u_dot_v,
    segment_softmax,
)
from repro.kernels.segment import segment_max
from repro.kernels.spmm import spmm
from repro.tensor.tensor import Tensor

SEED = 20260806


def make_adj(case="basic", seed=SEED, **kwargs):
    """Deterministic adjacency fixtures covering the awkward shapes."""
    rng = np.random.default_rng(seed)
    if case == "basic":
        num_src, num_dst, num_edges = 30, 24, 120
        src = rng.integers(0, num_src, num_edges)
        dst = rng.integers(0, num_dst, num_edges)
    elif case == "empty":
        num_src, num_dst = 7, 5
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    elif case == "isolated":
        # src nodes 20..29 never appear; dst nodes 18..23 receive nothing.
        num_src, num_dst, num_edges = 30, 24, 90
        src = rng.integers(0, 20, num_edges)
        dst = rng.integers(0, 18, num_edges)
    else:  # pragma: no cover - guard against typos in parametrize lists
        raise ValueError(case)
    return SparseAdj(src, dst, num_src=num_src, num_dst=num_dst, **kwargs)


def run_both_modes(build_and_run, seed=SEED):
    """Run ``build_and_run(rng)`` under fast and reference schedules.

    Fresh inputs are drawn from the same seed in each mode so any
    divergence is attributable to the kernel schedule alone.  Returns
    ``(fast, reference)`` where each is whatever ``build_and_run`` returns.
    """
    fast = build_and_run(np.random.default_rng(seed))
    with use_reference_kernels():
        assert not fastpath_enabled()
        reference = build_and_run(np.random.default_rng(seed))
    assert fastpath_enabled()
    return fast, reference


def assert_close(a, b, label=""):
    assert a is not None and b is not None, label
    assert np.allclose(a, b, rtol=1e-6, atol=1e-6), label


def run_kernel(adj, build_inputs, kernel):
    """One mode's worth of forward + backward through ``kernel``.

    Uses a random linear functional of the output as the loss so the
    upstream gradient is non-trivial (``.sum()`` would send ones).
    """
    def _run(rng):
        inputs = build_inputs(rng, adj)
        out = kernel(adj, *inputs)
        probe = rng.standard_normal(out.shape).astype(np.float32)
        (out * probe).sum().backward()
        grads = tuple(t.grad.copy() if t.grad is not None else None
                      for t in inputs)
        return out.data.copy(), grads
    return _run


def check_kernel_equivalence(adj, build_inputs, kernel, label):
    fast, ref = run_both_modes(run_kernel(adj, build_inputs, kernel))
    assert_close(fast[0], ref[0], f"{label}: forward")
    assert len(fast[1]) == len(ref[1])
    for i, (gf, gr) in enumerate(zip(fast[1], ref[1])):
        assert (gf is None) == (gr is None), f"{label}: grad[{i}] presence"
        if gf is not None:
            assert_close(gf, gr, f"{label}: grad[{i}]")


def feat(rng, rows, *tail):
    return Tensor(rng.standard_normal((rows,) + tail).astype(np.float32),
                  requires_grad=True)


CASES = ["basic", "empty", "isolated"]


class TestScatterEquivalence:
    @pytest.mark.parametrize("case", CASES)
    def test_scatter_add(self, case):
        adj = make_adj(case)
        check_kernel_equivalence(
            adj, lambda rng, a: (feat(rng, a.num_edges, 6),),
            scatter_add, f"scatter_add[{case}]")

    def test_scatter_add_multihead(self):
        adj = make_adj("basic")
        check_kernel_equivalence(
            adj, lambda rng, a: (feat(rng, a.num_edges, 2, 3),),
            scatter_add, "scatter_add[multihead]")

    @pytest.mark.parametrize("case", CASES)
    def test_scatter_mean(self, case):
        adj = make_adj(case)
        check_kernel_equivalence(
            adj, lambda rng, a: (feat(rng, a.num_edges, 4),),
            scatter_mean, f"scatter_mean[{case}]")

    @pytest.mark.parametrize("side", ["src", "dst"])
    @pytest.mark.parametrize("case", CASES)
    def test_gather_backward(self, case, side):
        adj = make_adj(case)
        rows = adj.num_src if side == "src" else adj.num_dst
        check_kernel_equivalence(
            adj, lambda rng, a: (feat(rng, rows, 5),),
            lambda a, x: gather(a, x, side=side), f"gather[{case},{side}]")

    @pytest.mark.parametrize("case", CASES)
    def test_segment_max(self, case):
        adj = make_adj(case)
        check_kernel_equivalence(
            adj, lambda rng, a: (feat(rng, a.num_edges, 3),),
            segment_max, f"segment_max[{case}]")


class TestSddmmEquivalence:
    @pytest.mark.parametrize("case", CASES)
    def test_u_add_v(self, case):
        adj = make_adj(case)
        check_kernel_equivalence(
            adj,
            lambda rng, a: (feat(rng, a.num_src, 4), feat(rng, a.num_dst, 4)),
            sddmm_u_add_v, f"u_add_v[{case}]")

    def test_u_dot_v(self):
        adj = make_adj("basic")
        check_kernel_equivalence(
            adj,
            lambda rng, a: (feat(rng, a.num_src, 2, 3),
                            feat(rng, a.num_dst, 2, 3)),
            sddmm_u_dot_v, "u_dot_v")

    @pytest.mark.parametrize("case", CASES)
    def test_fused_gatv2_scores(self, case):
        adj = make_adj(case)
        check_kernel_equivalence(
            adj,
            lambda rng, a: (feat(rng, a.num_src, 2, 3),
                            feat(rng, a.num_dst, 2, 3),
                            feat(rng, 2, 3)),
            fused_gatv2_scores, f"gatv2[{case}]")

    @pytest.mark.parametrize("case", CASES)
    def test_segment_softmax(self, case):
        adj = make_adj(case)
        check_kernel_equivalence(
            adj, lambda rng, a: (feat(rng, a.num_edges, 2),),
            segment_softmax, f"segment_softmax[{case}]")


class TestSpmmEquivalence:
    @pytest.mark.parametrize("case", CASES)
    def test_unweighted(self, case):
        adj = make_adj(case)
        check_kernel_equivalence(
            adj, lambda rng, a: (feat(rng, a.num_src, 6),),
            spmm, f"spmm[{case}]")

    @pytest.mark.parametrize("case", CASES)
    def test_weighted(self, case):
        adj = make_adj(case)
        check_kernel_equivalence(
            adj,
            lambda rng, a: (feat(rng, a.num_src, 6), feat(rng, a.num_edges)),
            spmm, f"spmm_w[{case}]")

    def test_weighted_multihead(self):
        adj = make_adj("basic")
        check_kernel_equivalence(
            adj,
            lambda rng, a: (feat(rng, a.num_src, 2, 3),
                            feat(rng, a.num_edges, 2)),
            spmm, "spmm_w[multihead]")


class TestGradcheck:
    """Finite-difference checks on the fast path itself (not just parity)."""

    @staticmethod
    def _fd(loss_of, array, index, eps=1e-3):
        orig = array[index]
        array[index] = orig + eps
        up = loss_of()
        array[index] = orig - eps
        down = loss_of()
        array[index] = orig
        return (up - down) / (2.0 * eps)

    def _check(self, make_loss, x, picks):
        make_loss().backward()
        analytic = x.grad.copy()
        for index in picks:
            numeric = self._fd(lambda: float(make_loss().data), x.data, index)
            assert analytic[index] == pytest.approx(numeric, rel=1e-2, abs=1e-3)

    def test_spmm_gradcheck(self):
        adj = make_adj("basic")
        rng = np.random.default_rng(SEED + 1)
        x = feat(rng, adj.num_src, 4)

        def make_loss():
            x.grad = None
            return (spmm(adj, x) * 2.0).sum()

        self._check(make_loss, x, [(0, 0), (5, 2), (adj.num_src - 1, 3)])

    def test_scatter_add_gradcheck(self):
        adj = make_adj("basic")
        rng = np.random.default_rng(SEED + 2)
        msg = feat(rng, adj.num_edges, 3)

        def make_loss():
            msg.grad = None
            return (scatter_add(adj, msg) * 3.0).sum()

        self._check(make_loss, msg, [(0, 0), (17, 1), (adj.num_edges - 1, 2)])

    def test_gather_gradcheck(self):
        adj = make_adj("basic")
        rng = np.random.default_rng(SEED + 3)
        x = feat(rng, adj.num_src, 3)

        def make_loss():
            x.grad = None
            return (gather(adj, x) * 0.5).sum()

        self._check(make_loss, x, [(0, 0), (9, 2)])


class TestFromSortedBlock:
    def test_matches_canonicalizing_constructor(self):
        rng = np.random.default_rng(SEED)
        dst = np.sort(rng.integers(0, 12, 60))
        src = rng.integers(0, 15, 60)
        fast = SparseAdj.from_sorted_block(src, dst, num_src=15, num_dst=12)
        full = SparseAdj(src, dst, num_src=15, num_dst=12)
        assert np.array_equal(fast.src, full.src)
        assert np.array_equal(fast.dst, full.dst)
        assert np.array_equal(fast.indptr, full.indptr)

    def test_rejects_unsorted_dst(self):
        with pytest.raises(GraphFormatError, match="dst-sorted"):
            SparseAdj.from_sorted_block(
                np.array([0, 1]), np.array([3, 1]), num_src=2, num_dst=4)

    def test_rejects_out_of_range_endpoints(self):
        with pytest.raises(GraphFormatError):
            SparseAdj.from_sorted_block(
                np.array([0, 1]), np.array([0, 9]), num_src=2, num_dst=4)
        with pytest.raises(GraphFormatError):
            SparseAdj.from_sorted_block(
                np.array([0, 1]), np.array([-1, 2]), num_src=2, num_dst=4)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(GraphFormatError):
            SparseAdj.from_sorted_block(
                np.array([0, 1, 2]), np.array([0, 1]), num_src=3, num_dst=2)

    def test_reference_mode_falls_back_and_sorts(self):
        src = np.array([2, 0, 1])
        dst = np.array([3, 1, 0])
        with use_reference_kernels():
            adj = SparseAdj.from_sorted_block(src, dst, num_src=3, num_dst=4)
        assert np.array_equal(adj.dst, np.sort(dst))

    def test_empty_block(self):
        adj = SparseAdj.from_sorted_block(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            num_src=3, num_dst=4)
        assert adj.num_edges == 0
        assert np.array_equal(adj.indptr, np.zeros(5, dtype=adj.indptr.dtype))


class TestCsrReuseInvariants:
    def test_default_data_restored_after_weighted_matmul(self):
        adj = make_adj("basic")
        x = np.random.default_rng(SEED).standard_normal(
            (adj.num_src, 4)).astype(np.float32)
        baseline = adj.matmul_data(None, x).copy()
        weights = np.arange(adj.num_edges, dtype=np.float32)
        adj.matmul_data(weights, x)
        # The shared CSR must come back with its canonical all-ones data.
        assert np.allclose(adj.matmul_data(None, x), baseline)

    def test_weighted_matmul_matches_dense_reference(self):
        adj = make_adj("basic")
        rng = np.random.default_rng(SEED)
        x = rng.standard_normal((adj.num_src, 4)).astype(np.float32)
        w = rng.random(adj.num_edges).astype(np.float32)
        dense = np.zeros((adj.num_dst, 4), dtype=np.float64)
        for e in range(adj.num_edges):
            dense[adj.dst[e]] += w[e] * x[adj.src[e]]
        assert np.allclose(adj.matmul_data(w, x), dense, atol=1e-5)

    def test_rmatmul_matches_dense_reference(self):
        adj = make_adj("basic")
        rng = np.random.default_rng(SEED)
        grad = rng.standard_normal((adj.num_dst, 4)).astype(np.float32)
        w = rng.random(adj.num_edges).astype(np.float32)
        for data in (None, w):
            dense = np.zeros((adj.num_src, 4), dtype=np.float64)
            for e in range(adj.num_edges):
                scale = 1.0 if data is None else data[e]
                dense[adj.src[e]] += scale * grad[adj.dst[e]]
            assert np.allclose(adj.rmatmul(grad, data=data), dense, atol=1e-5)


class TestDegreeCaches:
    def test_in_degree_cache_is_stable(self):
        adj = make_adj("isolated")
        first = adj.in_degrees()
        assert adj.in_degrees() is first
        assert np.array_equal(first, np.bincount(adj.dst, minlength=adj.num_dst))

    def test_inv_in_degrees_values(self):
        adj = make_adj("isolated")
        inv = adj.inv_in_degrees()
        deg = adj.in_degrees()
        expected = 1.0 / np.maximum(deg, 1)
        assert inv.dtype == np.float32
        assert np.allclose(inv, expected)
        # Isolated dst nodes divide by one, not zero.
        assert np.all(np.isfinite(inv))
        assert adj.inv_in_degrees() is inv


class TestFastpathCounters:
    def test_sorted_block_hit_and_miss(self):
        src = np.array([0, 1])
        dst = np.array([0, 1])
        with telemetry.session() as sess:
            SparseAdj.from_sorted_block(src, dst, num_src=2, num_dst=2)
            assert sess.metrics.counter(
                "kernel.fastpath.hit", path="sorted_block").value == 1
            with use_reference_kernels():
                SparseAdj.from_sorted_block(src, dst, num_src=2, num_dst=2)
            assert sess.metrics.counter(
                "kernel.fastpath.miss", path="sorted_block").value == 1

    def test_csr_reuse_and_transpose_counters(self):
        adj = make_adj("basic")
        rng = np.random.default_rng(SEED)
        x = rng.standard_normal((adj.num_src, 3)).astype(np.float32)
        grad = rng.standard_normal((adj.num_dst, 3)).astype(np.float32)
        w = rng.random(adj.num_edges).astype(np.float32)
        with telemetry.session() as sess:
            adj.matmul_data(w, x)
            assert sess.metrics.counter(
                "kernel.fastpath.hit", path="csr_reuse").value == 1
            adj.rmatmul(grad)   # first transpose: built fresh
            adj.rmatmul(grad)   # second: served from cache
            assert sess.metrics.counter(
                "kernel.fastpath.miss", path="transpose_cache").value == 1
            assert sess.metrics.counter(
                "kernel.fastpath.hit", path="transpose_cache").value == 1
            with use_reference_kernels():
                adj.matmul_data(w, x)
            assert sess.metrics.counter(
                "kernel.fastpath.miss", path="csr_reuse").value == 1

    def test_counters_silent_without_session(self):
        # The guarded probe must be a no-op when telemetry is off.
        assert telemetry.metrics() is None
        adj = make_adj("basic")
        adj.matmul_data(np.ones(adj.num_edges, dtype=np.float32),
                        np.ones((adj.num_src, 2), dtype=np.float32))


class TestBlockConstructionEquivalence:
    def test_with_self_loops_matches_concat_reference(self):
        rng = np.random.default_rng(SEED)
        adj = SparseAdj(rng.integers(0, 16, 50), rng.integers(0, 16, 50),
                        num_src=16, num_dst=16)
        looped = with_self_loops(adj)
        loops = np.arange(16)
        ref = SparseAdj(np.concatenate([adj.src, loops]),
                        np.concatenate([adj.dst, loops]),
                        num_src=16, num_dst=16)
        assert np.array_equal(looped.src, ref.src)
        assert np.array_equal(looped.dst, ref.dst)
        assert np.array_equal(looped.indptr, ref.indptr)

    def test_induced_subgraph_dst_order(self):
        rng = np.random.default_rng(SEED)
        src = rng.integers(0, 20, 80)
        coo = AdjacencyCOO(20, np.concatenate([src, (src + 7) % 20]),
                           np.concatenate([(src + 7) % 20, src]))
        csr = coo.to_csr()
        nodes = np.array([3, 8, 11, 15, 19])
        by_dst, _ = induced_subgraph(csr, nodes, order="dst")
        by_src, _ = induced_subgraph(csr, nodes, order="src")
        assert np.all(np.diff(by_dst.dst) >= 0)
        # Same edge set on a symmetrized graph, just transposed ownership.
        fwd = set(zip(by_dst.src.tolist(), by_dst.dst.tolist()))
        rev = set(zip(by_src.dst.tolist(), by_src.src.tolist()))
        assert fwd == rev

    def test_induced_subgraph_rejects_bad_order(self):
        csr = AdjacencyCOO(4, np.array([0, 1]), np.array([1, 2])).to_csr()
        with pytest.raises(ValueError):
            induced_subgraph(csr, np.array([0, 1]), order="rows")


class TestChargedCostInvariance:
    """The cost model must not see which arithmetic schedule executed."""

    def test_device_counters_identical_across_modes(self):
        def run(rng):
            machine = paper_testbed()
            adj = make_adj("basic", device=machine.cpu)
            x = Tensor(rng.standard_normal((adj.num_src, 8)).astype(np.float32),
                       device=machine.cpu, requires_grad=True)
            w = Tensor(rng.random(adj.num_edges).astype(np.float32),
                       device=machine.cpu, requires_grad=True)
            spmm(adj, x, w).sum().backward()
            msg = Tensor(rng.standard_normal(
                (adj.num_edges, 4)).astype(np.float32),
                device=machine.cpu, requires_grad=True)
            scatter_mean(adj, msg).sum().backward()
            c = machine.cpu.counters
            return c.flops, c.bytes_moved, dict(c.by_kernel)

        fast, ref = run_both_modes(run)
        assert fast[0] == ref[0]
        assert fast[1] == ref[1]
        assert fast[2] == ref[2]

    def test_experiment_accounting_identical_across_modes(self):
        def run(_rng):
            return run_training_experiment(
                framework="pyglite", dataset="ppi", model="graphsage",
                epochs=1, representative_batches=2, seed=0)

        fast, ref = run_both_modes(run)
        assert fast.phases == ref.phases
        assert fast.kernel_families == ref.kernel_families
        assert fast.total_energy == ref.total_energy
        # Arithmetic order may differ in the last float32 bits only.
        assert fast.losses == pytest.approx(ref.losses, rel=1e-5)
