"""Tests for the ``repro lint`` static-analysis subsystem.

Each rule gets true-positive and true-negative fixture snippets, written
into a synthetic ``repro.*`` package tree so path-scoped rules (HOTLOOP,
INPLACE-GRAD, PARAM-REG, DTYPE-DRIFT) see the module names they key on.
The meta-test at the bottom pins the acceptance criterion: the real
``src/repro`` tree is clean under every rule with an *empty* baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import RULES, lint_paths, load_baseline, save_baseline
from repro.lint.baseline import BaselineError
from repro.lint.engine import module_name_for
from repro.lint.reporting import SCHEMA_VERSION, to_json_payload
from repro.lint.rules import resolve_rules

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_module(tmp_path: Path, rel: str, source: str) -> Path:
    """Write ``source`` at ``tmp_path/rel`` with an ``__init__.py`` chain."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    walk = target.parent
    while walk != tmp_path.parent and walk != walk.parent:
        if walk == tmp_path:
            break
        (walk / "__init__.py").touch()
        walk = walk.parent
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


def run_rules(tmp_path, rel, source, select=None):
    path = write_module(tmp_path, rel, source)
    return lint_paths([str(path)], select=select).findings


# ---------------------------------------------------------------------------
# registry


def test_registry_has_all_rules():
    assert set(RULES) == {"HOTLOOP", "RNG-SEED", "INPLACE-GRAD",
                          "PARAM-REG", "DTYPE-DRIFT", "TELEMETRY-LEAK",
                          "ADD-AT", "BARE-RETRY"}
    for rule in RULES.values():
        assert rule.severity in ("error", "warning")
        assert rule.description


def test_resolve_rules_select_and_unknown():
    assert [r.name for r in resolve_rules(["hotloop"])] == ["HOTLOOP"]
    with pytest.raises(KeyError):
        resolve_rules(["NOPE"])


def test_module_name_for(tmp_path):
    path = write_module(tmp_path, "repro/sampling/mod.py", "x = 1\n")
    assert module_name_for(path) == "repro.sampling.mod"
    loose = tmp_path / "loose.py"
    loose.write_text("x = 1\n")
    assert module_name_for(loose) == "loose"


# ---------------------------------------------------------------------------
# HOTLOOP


HOTLOOP_TP = """
    def f(xs):
        total = 0
        for i in range(len(xs)):
            total += xs[i]
        for i in range(xs.size):
            total += xs[i]
        for h in range(xs.shape[0]):
            total += xs[h]
        for v in xs.flat:
            total += v
        vals = [v * 2 for v in xs.tolist()]
        return total, vals
"""


def test_hotloop_true_positives(tmp_path):
    findings = run_rules(tmp_path, "repro/sampling/hot.py", HOTLOOP_TP)
    assert len(findings) == 5
    assert all(f.rule == "HOTLOOP" for f in findings)


def test_hotloop_ignores_strided_and_scalar_loops(tmp_path):
    source = """
        def f(train, xs, fanouts, batch):
            for start in range(0, train.size, batch):
                yield train[start:start + batch]
            for fanout in reversed(fanouts):
                yield fanout
            for i in range(3):
                yield i
    """
    assert run_rules(tmp_path, "repro/sampling/ok.py", source) == []


def test_hotloop_scoped_to_hot_path_packages(tmp_path):
    # Same per-element loop outside the hot-path packages: not flagged.
    assert run_rules(tmp_path, "repro/models/cold.py", HOTLOOP_TP) == []
    assert run_rules(tmp_path, "plain/pkg.py", HOTLOOP_TP) == []


# ---------------------------------------------------------------------------
# RNG-SEED


def test_rng_seed_true_positives(tmp_path):
    source = """
        import numpy as np

        def f():
            a = np.random.default_rng()
            b = np.random.default_rng(None)
            c = np.random.rand(3)
            np.random.seed(0)
            np.random.shuffle(c)
            return a, b, c
    """
    findings = run_rules(tmp_path, "anywhere.py", source)
    assert len(findings) == 5
    assert all(f.rule == "RNG-SEED" for f in findings)


def test_rng_seed_true_negatives(tmp_path):
    source = """
        import numpy as np

        def f(seed, rng=None):
            a = np.random.default_rng(0)
            b = np.random.default_rng(seed)
            rng = rng if rng is not None else np.random.default_rng(seed)
            keys = rng.random(10)
            pick = rng.choice(10, size=3)
            gen = np.random.Generator(np.random.PCG64(seed))
            return a, b, keys, pick, gen
    """
    assert run_rules(tmp_path, "anywhere.py", source) == []


# ---------------------------------------------------------------------------
# INPLACE-GRAD


def test_inplace_grad_true_positives(tmp_path):
    source = """
        def bad(p, update, g):
            p.data = update
            p.grad += g
            p.data[0] = 1.0
            p.grad.fill(0.0)
    """
    findings = run_rules(tmp_path, "repro/models/mutate.py", source)
    assert len(findings) == 4
    assert all(f.rule == "INPLACE-GRAD" for f in findings)


def test_inplace_grad_allows_no_grad_and_exempt_modules(tmp_path):
    guarded = """
        from repro.tensor.tensor import no_grad

        def ok(p, update):
            with no_grad():
                p.data = update
                p.grad = None
    """
    assert run_rules(tmp_path, "repro/models/guarded.py", guarded) == []
    # The optimizer module's whole job is mutating .data in place.
    raw = """
        def step(p, lr, grad):
            p.data = p.data - lr * grad
    """
    assert run_rules(tmp_path, "repro/tensor/optim.py", raw) == []
    # Outside the repro package the rule does not apply (tests may poke).
    assert run_rules(tmp_path, "plain/mutate.py", "def f(p):\n    p.data = 1\n") == []


# ---------------------------------------------------------------------------
# PARAM-REG


def test_param_reg_true_positives(tmp_path):
    source = """
        from repro.tensor.module import Module, Parameter

        class Bad(Module):
            def __init__(self, w0):
                super().__init__()
                weight = Parameter(w0)        # never registered
                Parameter(w0)                 # discarded immediately
                scale = Parameter(w0)
                self.cached = scale.data * 2  # read, still unregistered
    """
    findings = run_rules(tmp_path, "repro/models/layers.py", source)
    assert len(findings) == 3
    assert all(f.rule == "PARAM-REG" for f in findings)


def test_param_reg_true_negatives(tmp_path):
    source = """
        from repro.tensor.module import Module, Parameter

        class Good(Module):
            def __init__(self, w0, k):
                super().__init__()
                self.weight = Parameter(w0)
                bias = Parameter(w0)
                self.bias = bias
                for i in range(k):
                    setattr(self, f"lin{i}", Parameter(w0))
                extras = Parameter(w0)
                self.extras = [extras]

            def forward(self, x):
                w = Parameter(x)  # outside __init__: other rules' business
                return w
    """
    assert run_rules(tmp_path, "repro/models/layers.py", source) == []


# ---------------------------------------------------------------------------
# DTYPE-DRIFT


def test_dtype_drift_true_positives(tmp_path):
    source = """
        import numpy as np

        def f(x):
            a = x.astype(np.float64)
            b = x.astype("float64")
            c = x.astype(float)
            d = np.zeros(3, dtype=np.float64)
            e = np.float64(x[0])
            return a, b, c, d, e
    """
    findings = run_rules(tmp_path, "repro/kernels/promote.py", source)
    assert len(findings) == 5
    assert all(f.rule == "DTYPE-DRIFT" for f in findings)
    assert all(f.severity == "warning" for f in findings)


def test_dtype_drift_true_negatives(tmp_path):
    source = """
        import numpy as np
        FLOAT_DTYPE = np.float32

        def f(x):
            a = x.astype(np.float32)
            b = x.astype(FLOAT_DTYPE)
            c = np.zeros(3, dtype=np.int64)
            return a, b, c
    """
    assert run_rules(tmp_path, "repro/kernels/promote.py", source) == []
    # Not a hot-path package: promotion is allowed (e.g. report code).
    drift = "import numpy as np\n\ndef f(x):\n    return x.astype(np.float64)\n"
    assert run_rules(tmp_path, "repro/profiling/report2.py", drift) == []


# ---------------------------------------------------------------------------
# ADD-AT


def test_add_at_true_positives(tmp_path):
    source = """
        import numpy as np

        def f(out, index, values):
            np.add.at(out, index, values)
            np.subtract.at(out, index, values)
            numpy.add.at(out, index, values)
            return out
    """
    for rel in ("repro/kernels/scat.py", "repro/frameworks/agg.py",
                "repro/tensor/ops.py"):
        findings = run_rules(tmp_path, rel, source)
        assert len(findings) == 3, rel
        assert all(f.rule == "ADD-AT" for f in findings)
        assert all(f.severity == "error" for f in findings)


def test_add_at_true_negatives(tmp_path):
    source = """
        import numpy as np

        def f(out, indptr, values, starts):
            out[:] = np.add.reduceat(values, starts, axis=0)
            np.maximum.at(out, starts, values)
            np.add(out, values, out=out)
            return out
    """
    assert run_rules(tmp_path, "repro/kernels/scat.py", source) == []
    # Outside the kernel-path packages (e.g. sampling) the idiom is not
    # flagged — there is no sorted-segment structure to reduce over.
    scatter = ("import numpy as np\n\ndef f(out, idx, v):\n"
               "    np.add.at(out, idx, v)\n    return out\n")
    assert run_rules(tmp_path, "repro/sampling/walk2.py", scatter) == []
    assert run_rules(tmp_path, "repro/profiling/agg2.py", scatter) == []


def test_add_at_justified_suppression(tmp_path):
    source = """
        import numpy as np

        def f(out, index, values):
            np.add.at(out, index, values)  # repro-lint: disable=ADD-AT reference fallback
            return out
    """
    assert run_rules(tmp_path, "repro/kernels/scat.py", source) == []


# ---------------------------------------------------------------------------
# inline suppressions


def test_inline_suppression_silences_only_that_line(tmp_path):
    source = """
        import numpy as np

        def f():
            a = np.random.default_rng()  # repro-lint: disable=RNG-SEED justified here
            b = np.random.default_rng()
            return a, b
    """
    findings = run_rules(tmp_path, "anywhere.py", source)
    assert len(findings) == 1
    assert findings[0].line == 6


def test_suppression_matches_multiline_expression_span(tmp_path):
    source = """
        import numpy as np

        def f(x):
            return np.maximum(
                x, 1
            ).astype(np.float64)  # repro-lint: disable=DTYPE-DRIFT
    """
    assert run_rules(tmp_path, "repro/kernels/span.py", source) == []


def test_file_level_suppression_and_disable_all(tmp_path):
    source = """
        # repro-lint: disable-file=RNG-SEED
        import numpy as np

        def f():
            a = np.random.default_rng()
            b = np.random.rand(3)  # repro-lint: disable=all
            return a, b
    """
    assert run_rules(tmp_path, "anywhere.py", source) == []


def test_marker_inside_string_is_not_a_suppression(tmp_path):
    source = """
        import numpy as np

        def f():
            note = "# repro-lint: disable=RNG-SEED"
            return np.random.default_rng(), note
    """
    findings = run_rules(tmp_path, "anywhere.py", source)
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# baseline


BASELINE_SRC = """
    import numpy as np

    def f():
        return np.random.default_rng()
"""


def test_baseline_roundtrip_filters_old_findings(tmp_path):
    path = write_module(tmp_path, "anywhere.py", BASELINE_SRC)
    first = lint_paths([str(path)])
    assert len(first.findings) == 1

    baseline_file = tmp_path / "baseline.json"
    save_baseline(first.findings, baseline_file)
    counts = load_baseline(baseline_file)
    assert sum(counts.values()) == 1

    second = lint_paths([str(path)], baseline=counts)
    assert second.ok
    assert len(second.baselined) == 1


def test_baseline_counts_gate_additional_instances(tmp_path):
    path = write_module(tmp_path, "anywhere.py", BASELINE_SRC)
    counts = {f.baseline_key(): 1 for f in lint_paths([str(path)]).findings}

    # A second identical violation in the same file is NEW, not absorbed.
    write_module(tmp_path, "anywhere.py", BASELINE_SRC + """
    def g():
        return np.random.default_rng()
""")
    result = lint_paths([str(path)], baseline=counts)
    assert len(result.baselined) == 1
    assert len(result.findings) == 1


def test_baseline_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("[]")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    bad.write_text('{"version": 99, "findings": []}')
    with pytest.raises(BaselineError):
        load_baseline(bad)


# ---------------------------------------------------------------------------
# syntax errors


def test_unparsable_file_yields_syntax_finding(tmp_path):
    path = write_module(tmp_path, "broken.py", "def f(:\n")
    findings = lint_paths([str(path)]).findings
    assert len(findings) == 1
    assert findings[0].rule == "SYNTAX"
    assert findings[0].severity == "error"


# ---------------------------------------------------------------------------
# JSON schema (documented contract for downstream tooling)


def test_json_payload_schema(tmp_path):
    path = write_module(tmp_path, "anywhere.py", BASELINE_SRC)
    payload = to_json_payload(lint_paths([str(path)]))

    assert payload["version"] == SCHEMA_VERSION == 2
    assert payload["tool"] == "repro-lint"
    assert payload["ok"] is False
    assert payload["deep"] is False
    summary = payload["summary"]
    assert set(summary) == {"files_checked", "new", "baselined", "suppressed",
                            "by_rule", "by_severity"}
    assert summary["new"] == 1
    assert summary["by_rule"] == {"RNG-SEED": 1}
    assert summary["by_severity"] == {"error": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
    assert finding["rule"] == "RNG-SEED"
    assert isinstance(finding["line"], int) and finding["line"] >= 1
    json.dumps(payload)  # must be serializable as-is


# ---------------------------------------------------------------------------
# CLI


def test_cli_exit_codes_and_json(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # avoid picking up the repo's baseline
    dirty = write_module(tmp_path, "dirty.py", BASELINE_SRC)
    clean = write_module(tmp_path, "clean.py", "x = 1\n")

    assert cli_main(["lint", str(clean)]) == 0
    capsys.readouterr()

    assert cli_main(["lint", str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False and payload["summary"]["new"] == 1

    # --select an unrelated rule: the RNG finding is out of scope.
    assert cli_main(["lint", str(dirty), "--select", "HOTLOOP"]) == 0
    capsys.readouterr()

    assert cli_main(["lint", str(dirty), "--select", "BOGUS"]) == 2
    capsys.readouterr()

    assert cli_main(["lint", str(dirty), "--baseline", "missing.json"]) == 2
    capsys.readouterr()


def test_cli_update_baseline_then_gate(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    dirty = write_module(tmp_path, "dirty.py", BASELINE_SRC)
    baseline = tmp_path / "lint-baseline.json"

    assert cli_main(["lint", str(dirty), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
    capsys.readouterr()
    assert baseline.exists()

    assert cli_main(["lint", str(dirty), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in RULES:
        assert name in out


# ---------------------------------------------------------------------------
# TELEMETRY-LEAK


def test_telemetry_leak_true_positives(tmp_path):
    source = """
        from repro.telemetry import Counter
        from repro.telemetry.metrics import Histogram
        from repro.telemetry import metrics as tmetrics

        def f(tracer, profiler, registry):
            span = tracer.start_span("work")        # no context manager
            tracer.span("dangling")                 # CM result discarded
            profiler.phase("sampling")              # CM result discarded
            c = Counter("my.counter")               # bypasses the registry
            h = Histogram("my.hist")                # bypasses the registry
            g = tmetrics.Gauge("my.gauge")          # bypasses the registry
            return span, c, h, g
    """
    findings = run_rules(tmp_path, "repro/models/leaky.py", source)
    assert len(findings) == 6
    assert all(f.rule == "TELEMETRY-LEAK" for f in findings)


def test_telemetry_leak_true_negatives(tmp_path):
    source = """
        from collections import Counter
        from repro.telemetry.runtime import maybe_span

        def f(tracer, profiler, registry, words):
            with tracer.span("work"):
                pass
            with profiler.phase("sampling"):
                pass
            with maybe_span("train.epoch") as span:
                pass
            c = registry.counter("sampler.items")   # registry path is fine
            c.inc()
            registry.histogram("pcie.transfer_bytes").observe(4096)
            return Counter(words), span             # stdlib Counter untouched
    """
    assert run_rules(tmp_path, "repro/models/clean.py", source) == []


def test_telemetry_leak_scoped_to_repro_and_exempts_telemetry(tmp_path):
    leak = """
        def f(tracer):
            return tracer.start_span("internal")
    """
    # The telemetry package itself implements the lifecycle.
    assert run_rules(tmp_path, "repro/telemetry/spans2.py", leak) == []
    # Code outside the repro package is out of scope.
    assert run_rules(tmp_path, "plain/other.py", leak) == []
    # Anywhere else in repro it is flagged.
    assert len(run_rules(tmp_path, "repro/models/bad.py", leak)) == 1


# ---------------------------------------------------------------------------
# BARE-RETRY


def test_bare_retry_true_positives(tmp_path):
    findings = run_rules(tmp_path, "repro/datasets/fetcher.py", """
        def fetch(path):
            while True:
                try:
                    return open(path).read()
                except OSError:
                    continue

        def fetch_verbose(path):
            while 1:
                try:
                    data = open(path).read()
                    return data
                except (OSError, ValueError):
                    note = "retrying"
                    if path:
                        continue
                    continue
    """, select=["BARE-RETRY"])
    assert len(findings) == 2
    assert all(f.rule == "BARE-RETRY" for f in findings)
    assert "unbounded" in findings[0].message


def test_bare_retry_true_negatives(tmp_path):
    # Bounded attempts, raise-on-exhaustion, and a continue that belongs
    # to an inner loop are all acceptable retry shapes.
    findings = run_rules(tmp_path, "repro/datasets/fetcher.py", """
        def bounded(path):
            for attempt in range(5):
                try:
                    return open(path).read()
                except OSError:
                    continue
            raise RuntimeError("exhausted")

        def raises_eventually(path, budget):
            while True:
                try:
                    return open(path).read()
                except OSError:
                    budget -= 1
                    if budget <= 0:
                        raise
                    continue

        def inner_loop_continue(paths):
            while True:
                try:
                    return [open(p).read() for p in paths]
                except OSError:
                    for p in paths:
                        if not p:
                            continue
                    return None
    """, select=["BARE-RETRY"])
    assert findings == []


def test_bare_retry_exempts_resilience_package(tmp_path):
    source = """
        def spin(fn):
            while True:
                try:
                    return fn()
                except OSError:
                    continue
    """
    # The resilience package implements the bounded retry engine itself.
    assert run_rules(tmp_path, "repro/resilience/engine.py", source,
                     select=["BARE-RETRY"]) == []
    # Code outside the repro package is out of scope.
    assert run_rules(tmp_path, "plain/other.py", source,
                     select=["BARE-RETRY"]) == []
    # The same code anywhere else in repro is flagged.
    assert len(run_rules(tmp_path, "repro/models/spinner.py", source,
                         select=["BARE-RETRY"])) == 1


# ---------------------------------------------------------------------------
# meta: the shipped tree is clean


def test_src_repro_is_clean_with_empty_baseline():
    """Acceptance criterion: `repro lint src/repro` has zero findings.

    Deliberately run WITHOUT the shipped baseline so this cannot pass by
    grandfathering: the tree itself must be clean.
    """
    result = lint_paths([str(REPO_ROOT / "src" / "repro")])
    assert result.ok, "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    )
    assert result.files_checked > 90


def test_shipped_baseline_is_empty():
    counts = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    assert counts == {}


def test_tests_and_benchmarks_are_clean():
    """The CI gate lints tests/ and benchmarks/ too — keep them clean."""
    result = lint_paths([str(REPO_ROOT / "tests"),
                         str(REPO_ROOT / "benchmarks")])
    assert result.ok, "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    )
