"""Partial GPU feature caching (the paper's pre-loading alternative).

Section 4.3 notes that full pre-loading "is only feasible when the GPU
memory is large enough" and suggests the alternative of caching "the
features of nodes that are most frequently used for model training"
(Dong et al., KDD 2021 [12]).  This module implements that strategy:

* a degree-ordered (or random) subset of node features is copied to GPU
  up front and pinned in the ledger;
* per-batch movement then transfers only the cache *misses* over PCIe,
  while hits are gathered from GPU memory.

High-degree nodes appear in far more sampled neighborhoods than their
population share, so a small degree-ordered cache absorbs a large hit
fraction — the effect the ablation bench
(`benchmarks/test_ablation_feature_cache.py`) quantifies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeviceError
from repro.frameworks.base import FrameworkGraph
from repro.graph.formats import INDEX_DTYPE
from repro.telemetry import runtime as telemetry

POLICIES = ("degree", "random")


class GpuFeatureCache:
    """A pinned subset of node features resident in GPU memory."""

    def __init__(self, fgraph: FrameworkGraph, fraction: float = 0.25,
                 policy: str = "degree", seed: Optional[int] = None) -> None:
        if not (0.0 < fraction <= 1.0):
            raise ValueError("cache fraction must be in (0, 1]")
        if policy not in POLICIES:
            raise ValueError(f"unknown cache policy {policy!r}")
        machine = fgraph.machine
        if machine.gpu is None:
            raise DeviceError("feature caching requires a GPU")
        self.fgraph = fgraph
        self.fraction = fraction
        self.policy = policy

        graph = fgraph.graph
        count = max(1, int(round(fraction * graph.num_nodes)))
        if policy == "degree":
            degrees = graph.adj.degrees()
            # Stable index-tiebroken hot set: among equal-degree nodes the
            # lower node id wins, so the cached set is a deterministic
            # contract (argsort on descending degrees leaves tie order
            # unspecified).  lexsort orders by the *last* key first.
            order = np.lexsort((np.arange(degrees.size),
                                -degrees.astype(np.int64)))
            cached = order[:count].astype(INDEX_DTYPE)
        else:
            rng = np.random.default_rng(seed)
            cached = rng.choice(graph.num_nodes, size=count,
                                replace=False).astype(INDEX_DTYPE)
        self.cached_nodes = np.sort(cached)
        self._is_cached = np.zeros(graph.num_nodes, dtype=bool)
        self._is_cached[self.cached_nodes] = True

        # Upfront: copy the cached rows and pin them in GPU memory.
        logical_bytes = int(
            4.0 * count * graph.node_scale * graph.num_features
        )
        machine.pcie.h2d(logical_bytes, tag="feature-cache-fill")
        self._allocation = machine.gpu.memory.alloc(logical_bytes,
                                                    label="feature-cache")
        self.hits = 0
        self.misses = 0

    @property
    def capacity_nodes(self) -> int:
        return int(self.cached_nodes.size)

    def hit_mask(self, nodes: np.ndarray) -> np.ndarray:
        """Boolean mask of which requested nodes are cache hits.

        Pure query — does not touch the hit/miss statistics, so callers
        may probe the same batch repeatedly without skewing
        :meth:`hit_rate`.  Use :meth:`record` on the one lookup that
        actually services a batch.
        """
        nodes = np.asarray(nodes, dtype=INDEX_DTYPE)
        return self._is_cached[nodes]

    def record(self, nodes: np.ndarray) -> np.ndarray:
        """Account one serviced batch: update hit/miss counters.

        Returns the same mask as :meth:`hit_mask` for convenience.
        """
        mask = self.hit_mask(nodes)
        hits = int(mask.sum())
        misses = int(mask.size - hits)
        self.hits += hits
        self.misses += misses
        registry = telemetry.metrics()
        if registry is not None:
            labels = {"policy": self.policy}
            registry.counter("feature_cache.hits", **labels).inc(hits)
            registry.counter("feature_cache.misses", **labels).inc(misses)
        return mask

    def hit_rate(self) -> float:
        """Observed hit fraction over all recorded lookups so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def release(self) -> None:
        """Unpin the cached features from GPU memory."""
        self.fgraph.machine.gpu.memory.release(self._allocation)
