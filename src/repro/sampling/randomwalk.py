"""GraphSAINT's random-walk sampler.

Paper configuration: 3000 root nodes, walk length 2; the union of visited
nodes induces the training subgraph.  Node- and edge-sampling variants
exist in GraphSAINT but the paper benchmarks only the random-walk sampler
(shown superior in the original work).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SamplerError
from repro.graph.formats import INDEX_DTYPE, induced_subgraph
from repro.graph.graph import Graph
from repro.sampling.base import SampleWork, SubgraphSample


class RandomWalkSampler:
    """Root-sampled random walks inducing per-batch subgraphs.

    The walk itself and the subgraph induction
    (:func:`~repro.graph.formats.induced_subgraph`) are both vectorized —
    no per-root Python loops.  ``seed=None`` leaves the RNG
    nondeterministic; the framework wrappers and the benchmark harness
    always pass an explicit seed (default 0) so runs are reproducible.
    """

    def __init__(
        self,
        graph: Graph,
        num_roots: int = 3000,
        walk_length: int = 2,
        seed: Optional[int] = None,
    ) -> None:
        if num_roots < 1 or walk_length < 0:
            raise SamplerError("need num_roots >= 1 and walk_length >= 0")
        self.graph = graph
        self.paper_num_roots = num_roots
        self.walk_length = int(walk_length)
        self.actual_num_roots = max(2, int(round(num_roots / graph.node_scale)))
        self.rng = np.random.default_rng(seed)
        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices

    def walk(self, roots: np.ndarray) -> np.ndarray:
        """Vectorized random walk; returns (num_roots, walk_length+1) ids."""
        roots = np.asarray(roots, dtype=INDEX_DTYPE)
        path = np.empty((roots.size, self.walk_length + 1), dtype=INDEX_DTYPE)
        path[:, 0] = roots
        current = roots.copy()
        for step in range(1, self.walk_length + 1):
            degrees = self._indptr[current + 1] - self._indptr[current]
            stuck = degrees == 0
            offsets = np.zeros(current.size, dtype=INDEX_DTYPE)
            movable = ~stuck
            if movable.any():
                offsets[movable] = self.rng.integers(
                    0, degrees[movable], size=int(movable.sum())
                )
            nxt = current.copy()
            nxt[movable] = self._indices[self._indptr[current[movable]] + offsets[movable]]
            path[:, step] = nxt
            current = nxt
        return path

    def sample(self, roots: Optional[np.ndarray] = None) -> SubgraphSample:
        """One batch: walk from (given or random) roots, induce subgraph."""
        if roots is None:
            roots = self.rng.choice(
                self.graph.num_nodes,
                size=min(self.actual_num_roots, self.graph.num_nodes),
                replace=False,
            )
        roots = np.asarray(roots, dtype=INDEX_DTYPE)
        if roots.size == 0:
            raise SamplerError("cannot walk from an empty root set")
        path = self.walk(roots)
        nodes = np.unique(path)
        # order="dst" emits dst-sorted edges (SparseAdj canonical order)
        # so assembly can use the argsort-free from_sorted_block path.
        sub_coo, _ = induced_subgraph(self.graph.adj, nodes, order="dst")

        node_scale = self.graph.node_scale
        edge_scale = self.graph.edge_scale
        work = SampleWork(
            # Walk steps are O(1) each; inducing the subgraph is a hash
            # membership probe per incident edge — cheaper per element than
            # ClusterGCN's aggregation copy, hence the 0.5 weight.
            items=(
                roots.size * (self.walk_length + 1) * node_scale
                + 0.5 * sub_coo.num_edges * edge_scale
            ),
            fetch_bytes=4.0 * nodes.size * node_scale * self.graph.num_features,
        )
        return SubgraphSample(
            nodes=nodes,
            src=sub_coo.src,
            dst=sub_coo.dst,
            node_scale=node_scale,
            edge_scale=edge_scale,
            work=work,
        )

    def num_batches(self) -> int:
        """Batches per epoch: one pass over the entire node set."""
        expected_nodes = min(
            self.graph.num_nodes, self.actual_num_roots * (self.walk_length + 1)
        )
        return max(1, int(np.ceil(self.graph.num_nodes / max(1, expected_nodes))))

    def epoch_batches(self):
        for _ in range(self.num_batches()):
            yield self.sample()
