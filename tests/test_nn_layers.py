"""Tests for the conv layers of both frameworks: shapes, math, gradients."""

import numpy as np
import pytest

from repro.frameworks import get_framework
from repro.frameworks.dglite import nn as dnn
from repro.frameworks.pyglite import nn as pnn
from repro.kernels.adj import SparseAdj
from repro.tensor.tensor import Tensor

RNG = np.random.default_rng(31)
KINDS = ("gcn", "gcn2", "cheb", "sage", "gat", "gatv2", "tag", "sg")


@pytest.fixture
def adj():
    src = RNG.integers(0, 30, 240)
    dst = RNG.integers(0, 30, 240)
    return SparseAdj(src, dst, 30, 30)


@pytest.fixture
def x():
    return Tensor(RNG.random((30, 12)).astype(np.float32), requires_grad=True)


def make(fw_name: str, kind: str, in_f=12, out_f=8, seed=3):
    fw = get_framework(fw_name)
    if kind == "gcn2":
        return fw.conv(kind, in_f, in_f, seed=seed)
    return fw.conv(kind, in_f, out_f, seed=seed)


@pytest.mark.parametrize("fw_name", ["dglite", "pyglite"])
@pytest.mark.parametrize("kind", KINDS)
class TestAllLayers:
    def test_output_shape(self, fw_name, kind, adj, x):
        conv = make(fw_name, kind)
        out = conv(adj, x)
        expected_cols = 12 if kind == "gcn2" else 8
        assert out.shape == (30, expected_cols)

    def test_gradients_reach_all_parameters(self, fw_name, kind, adj, x):
        conv = make(fw_name, kind)
        conv(adj, x).sum().backward()
        for name, param in conv.named_parameters():
            assert param.grad is not None, f"{name} got no gradient"
            assert np.isfinite(param.grad).all()

    def test_input_gradient_flows(self, fw_name, kind, adj, x):
        conv = make(fw_name, kind)
        conv(adj, x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0

    def test_deterministic_with_seed(self, fw_name, kind, adj, x):
        a = make(fw_name, kind)(adj, x)
        b = make(fw_name, kind)(adj, x)
        assert np.allclose(a.data, b.data)

    def test_output_finite(self, fw_name, kind, adj, x):
        out = make(fw_name, kind)(adj, x)
        assert np.isfinite(out.data).all()


class TestFrameworkEquivalence:
    """Same seed -> identical weights -> identical outputs across frameworks.

    The two frameworks take different kernel *paths* (fused vs unfused);
    the math must agree to float precision.
    """

    @pytest.mark.parametrize("kind", KINDS)
    def test_outputs_match(self, kind, adj, x):
        a = make("dglite", kind)(adj, x)
        b = make("pyglite", kind)(adj, x)
        assert np.allclose(a.data, b.data, atol=1e-4), kind

    @pytest.mark.parametrize("kind", ["cheb", "gat", "gatv2"])
    def test_unfused_gradients_match_fused(self, kind, adj):
        x1 = Tensor(RNG.random((30, 12)).astype(np.float32), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        make("dglite", kind)(adj, x1).sum().backward()
        make("pyglite", kind)(adj, x2).sum().backward()
        assert np.allclose(x1.grad, x2.grad, atol=1e-3), kind


class TestSpecificMath:
    def test_gcn_row_of_isolated_node_is_bias_plus_self(self):
        # node 2 isolated except its self-loop added by the layer
        adj = SparseAdj(np.array([0]), np.array([1]), 3, 3)
        x = Tensor(np.eye(3, dtype=np.float32))
        conv = dnn.GCNConv(3, 4, bias=False, seed=0)
        out = conv(adj, x)
        # isolated node: out = 1.0 * W[2] (self loop, degree 1)
        assert np.allclose(out.data[2], conv.linear.weight.data[2], atol=1e-5)

    def test_sage_mean_aggregation(self):
        adj = SparseAdj(np.array([0, 1]), np.array([2, 2]), 3, 3)
        x = Tensor(np.array([[2.0], [4.0], [0.0]], dtype=np.float32))
        conv = dnn.SAGEConv(1, 1, bias=False, seed=0)
        out = conv(adj, x)
        w_self = conv.lin_self.weight.data[0, 0]
        w_neigh = conv.lin_neigh.weight.data[0, 0]
        assert out.data[2, 0] == pytest.approx(0.0 * w_self + 3.0 * w_neigh, rel=1e-4)

    def test_gat_attention_rows_convex(self, adj):
        """GAT output of a node lies in the convex hull of its neighbors' z."""
        conv = dnn.GATConv(12, 8, heads=1, seed=0)
        x = Tensor(RNG.random((30, 12)).astype(np.float32))
        out = conv(adj, x)
        z = (x @ conv.lin.weight).data
        node = int(adj.dst[0])
        neigh = adj.src[adj.dst == node]
        lo = z[neigh].min(axis=0) - 1e-4
        hi = z[neigh].max(axis=0) + 1e-4
        assert np.all(out.data[node] >= lo) and np.all(out.data[node] <= hi)

    def test_sg_equals_repeated_propagation_plus_linear(self, adj, x):
        conv = dnn.SGConv(12, 8, k=2, seed=0)
        out = conv(adj, x)
        # manual: normalize-with-self-loops twice, then linear
        from repro.frameworks.common import gcn_norm_weight, with_self_loops
        from repro.kernels.spmm import spmm
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = spmm(adj_sl, spmm(adj_sl, x, weight=norm), weight=norm)
        manual = conv.linear(h)
        assert np.allclose(out.data, manual.data, atol=1e-5)

    def test_cheb_k1_is_linear(self, adj, x):
        conv = dnn.ChebConv(12, 8, k=1, seed=0)
        out = conv(adj, x)
        assert np.allclose(out.data, conv.lin0(x).data, atol=1e-5)

    def test_gcn2_alpha_one_keeps_x0(self, adj):
        x = Tensor(RNG.random((30, 12)).astype(np.float32))
        conv = dnn.GCN2Conv(12, 12, alpha=1.0, beta=0.0, seed=0)
        out = conv(adj, x, x0=x)
        assert np.allclose(out.data, x.data, atol=1e-5)


class TestBipartiteSupport:
    def test_sage_on_block(self):
        """SAGEConv must work on bipartite blocks (num_src > num_dst)."""
        adj = SparseAdj(np.array([0, 3, 4]), np.array([0, 1, 1]),
                        num_src=5, num_dst=2)
        x = Tensor(RNG.random((5, 6)).astype(np.float32))
        conv = dnn.SAGEConv(6, 4, seed=0)
        out = conv(adj, x)
        assert out.shape == (2, 4)

    def test_gat_on_block(self):
        adj = SparseAdj(np.array([0, 3, 4]), np.array([0, 1, 1]),
                        num_src=5, num_dst=2)
        x = Tensor(RNG.random((5, 6)).astype(np.float32))
        out = dnn.GATConv(6, 4, heads=2, seed=0)(adj, x)
        assert out.shape == (2, 4)

    def test_pyg_sage_matches_on_block(self):
        adj = SparseAdj(np.array([0, 3, 4]), np.array([0, 1, 1]),
                        num_src=5, num_dst=2)
        x = Tensor(RNG.random((5, 6)).astype(np.float32))
        a = dnn.SAGEConv(6, 4, seed=1)(adj, x)
        b = pnn.SAGEConv(6, 4, seed=1)(adj, x)
        assert np.allclose(a.data, b.data, atol=1e-5)


class TestConstructorValidation:
    def test_gcn2_requires_square(self):
        with pytest.raises(ValueError):
            dnn.GCN2Conv(8, 4)

    def test_gat_heads_divide_out(self):
        with pytest.raises(ValueError):
            dnn.GATConv(8, 10, heads=4)
        with pytest.raises(ValueError):
            pnn.GATv2Conv(8, 10, heads=4)

    def test_cheb_order_positive(self):
        with pytest.raises(ValueError):
            dnn.ChebConv(8, 4, k=0)

    def test_unknown_conv_kind(self):
        with pytest.raises(KeyError):
            get_framework("dglite").conv("transformer", 8, 8)
