"""Tests for the extension samplers (SAINT variants, FastGCN, LADIES)."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.frameworks import get_framework
from repro.sampling.layerwise import FastGCNSampler, LadiesSampler
from repro.sampling.saint_variants import SaintEdgeSampler, SaintNodeSampler


class TestSaintNodeSampler:
    def test_subgraph_is_induced_and_unique(self, tiny_graph):
        sampler = SaintNodeSampler(tiny_graph, budget=2000, seed=0)
        batch = sampler.sample()
        assert len(np.unique(batch.nodes)) == batch.num_nodes
        for s, d in zip(batch.src[:30], batch.dst[:30]):
            assert batch.nodes[d] in tiny_graph.adj.neighbors(int(batch.nodes[s]))

    def test_degree_bias(self, tiny_graph):
        """High-degree nodes must be over-represented vs their share."""
        sampler = SaintNodeSampler(tiny_graph, budget=2000, seed=0)
        degrees = tiny_graph.adj.degrees()
        top = np.argsort(degrees)[::-1][:tiny_graph.num_nodes // 10]
        hits = np.zeros(tiny_graph.num_nodes)
        for _ in range(20):
            hits[sampler.sample().nodes] += 1
        assert hits[top].mean() > hits.mean()

    def test_budget_scaled_down(self, tiny_graph):
        sampler = SaintNodeSampler(tiny_graph, budget=6000, seed=0)
        assert sampler.actual_budget == max(2, round(6000 / tiny_graph.node_scale))

    def test_invalid_budget(self, tiny_graph):
        with pytest.raises(SamplerError):
            SaintNodeSampler(tiny_graph, budget=0)

    def test_epoch_batch_count(self, tiny_graph):
        sampler = SaintNodeSampler(tiny_graph, budget=2000, seed=0)
        assert len(list(sampler.epoch_batches())) == sampler.num_batches()


class TestSaintEdgeSampler:
    def test_endpoints_become_nodes(self, tiny_graph):
        sampler = SaintEdgeSampler(tiny_graph, budget=20000, seed=0)
        batch = sampler.sample()
        assert batch.num_nodes > 0
        assert batch.num_edges > 0

    def test_inverse_degree_bias(self, tiny_graph):
        """Edge sampling favours edges between low-degree endpoints."""
        sampler = SaintEdgeSampler(tiny_graph, budget=20000, seed=0)
        degrees = tiny_graph.adj.degrees()
        batch = sampler.sample()
        sampled_mean_deg = degrees[batch.nodes].mean()
        # the node sampler (degree^2) pulls the other way
        node_batch = SaintNodeSampler(tiny_graph, budget=2000, seed=0).sample()
        assert sampled_mean_deg < degrees[node_batch.nodes].mean()

    def test_work_positive(self, tiny_graph):
        batch = SaintEdgeSampler(tiny_graph, budget=20000, seed=0).sample()
        assert batch.work.items > 0


class TestFastGCN:
    def test_block_structure(self, tiny_graph):
        sampler = FastGCNSampler(tiny_graph, layer_sizes=(2000, 2000),
                                 batch_size=400, seed=0)
        roots = tiny_graph.train_nodes()[:6]
        batch = sampler.sample(roots)
        assert len(batch.blocks) == 2
        assert np.array_equal(batch.blocks[-1].dst_nodes, roots)
        assert np.array_equal(batch.blocks[0].dst_nodes, batch.blocks[1].src_nodes)

    def test_edges_come_from_graph(self, tiny_graph):
        sampler = FastGCNSampler(tiny_graph, layer_sizes=(3000, 3000), seed=0)
        batch = sampler.sample(tiny_graph.train_nodes()[:5])
        block = batch.blocks[-1]
        for ls, ld in zip(block.src, block.dst):
            assert (block.src_nodes[ls]
                    in tiny_graph.adj.neighbors(int(block.dst_nodes[ld])))

    def test_isolated_nodes_appear_with_small_layers(self, tiny_graph):
        """FastGCN's known failure mode: tiny layer budgets isolate roots."""
        sampler = FastGCNSampler(tiny_graph, layer_sizes=(40, 40), seed=0)
        sampler.sample(tiny_graph.train_nodes()[:30])
        assert sampler.last_isolated_fraction > 0.0

    def test_large_layers_reduce_isolation(self, tiny_graph):
        small = FastGCNSampler(tiny_graph, layer_sizes=(40, 40), seed=0)
        big = FastGCNSampler(tiny_graph, layer_sizes=(100000, 100000), seed=0)
        roots = tiny_graph.train_nodes()[:30]
        small.sample(roots)
        big.sample(roots)
        assert big.last_isolated_fraction <= small.last_isolated_fraction

    def test_empty_roots_rejected(self, tiny_graph):
        with pytest.raises(SamplerError):
            FastGCNSampler(tiny_graph, seed=0).sample(np.array([], dtype=np.int64))

    def test_empty_layer_sizes_rejected(self, tiny_graph):
        with pytest.raises(SamplerError):
            FastGCNSampler(tiny_graph, layer_sizes=())


class TestLadies:
    def test_block_structure(self, tiny_graph):
        sampler = LadiesSampler(tiny_graph, layer_sizes=(2000, 2000), seed=0)
        roots = tiny_graph.train_nodes()[:6]
        batch = sampler.sample(roots)
        assert len(batch.blocks) == 2
        assert np.array_equal(batch.blocks[-1].dst_nodes, roots)

    def test_draws_are_better_utilized_than_fastgcn(self, tiny_graph):
        """LADIES fixes FastGCN's sparsity issue: its candidates come from
        the frontier's neighborhood, so a much larger share of the drawn
        budget ends up connected to the batch."""
        roots = tiny_graph.train_nodes()[:30]

        def utilization(sampler_cls):
            used, drawn = 0, 0
            for seed in range(5):
                sampler = sampler_cls(tiny_graph, layer_sizes=(1000, 1000),
                                      seed=seed)
                batch = sampler.sample(roots)
                block = batch.blocks[-1]
                # sources beyond the dst prefix are the used candidates
                used += block.src_nodes.size - block.dst_nodes.size
                drawn += sampler.layer_sizes[-1]
            return used / drawn

        assert utilization(LadiesSampler) > utilization(FastGCNSampler)

    def test_charges_more_work_than_fastgcn(self, tiny_graph):
        """The per-layer distribution pass is LADIES' extra overhead."""
        roots = tiny_graph.train_nodes()[:20]
        ladies_work = LadiesSampler(tiny_graph, layer_sizes=(500, 500),
                                    seed=0).sample(roots).work.items
        fast_work = FastGCNSampler(tiny_graph, layer_sizes=(500, 500),
                                   seed=0).sample(roots).work.items
        assert ladies_work > fast_work


class TestFrameworkIntegration:
    @pytest.mark.parametrize("kind", ["saint_node", "saint_edge", "fastgcn", "ladies"])
    def test_wrapped_sampler_produces_batches(self, machine, kind):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        sampler = fw.extension_sampler(fgraph, kind, seed=0)
        before = machine.clock.now
        if kind.startswith("saint"):
            batch = sampler.sample()
        else:
            batch = sampler.sample(fgraph.graph.train_nodes()[:4])
        assert machine.clock.now > before  # sampling was charged
        assert batch.x.shape[0] > 0

    def test_unknown_kind_rejected(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        with pytest.raises(KeyError):
            fw.extension_sampler(fgraph, "frontier")

    def test_pyg_charges_more_for_layerwise(self):
        from repro.hardware.machine import paper_testbed
        times = {}
        for name in ("dglite", "pyglite"):
            machine = paper_testbed()
            fw = get_framework(name)
            fgraph = fw.load("ppi", machine, scale=0.3)
            sampler = fw.extension_sampler(fgraph, "ladies", seed=0)
            before = machine.clock.now
            sampler.sample(fgraph.graph.train_nodes()[:4])
            times[name] = machine.clock.now - before
        assert times["pyglite"] > times["dglite"]
