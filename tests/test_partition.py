"""Tests for the METIS-substitute partitioner."""

import numpy as np
import pytest

from repro.graph.generators import dcsbm_graph, ring_graph
from repro.graph.partition import bfs_order, partition_graph


@pytest.fixture
def community_graph():
    coo, _ = dcsbm_graph(400, 3200, num_communities=8, intra_prob=0.9, seed=0)
    return coo.to_csr()


class TestBfsOrder:
    def test_visits_every_node_once(self, community_graph):
        order = bfs_order(community_graph, seed=0)
        assert sorted(order.tolist()) == list(range(community_graph.num_nodes))

    def test_handles_disconnected_components(self):
        # two disjoint rings
        ring = ring_graph(6)
        src = np.concatenate([ring.src, ring.src + 6])
        dst = np.concatenate([ring.dst, ring.dst + 6])
        from repro.graph.formats import AdjacencyCOO
        csr = AdjacencyCOO(12, src, dst).to_csr()
        order = bfs_order(csr, seed=0)
        assert sorted(order.tolist()) == list(range(12))


class TestPartition:
    def test_every_node_assigned(self, community_graph):
        result = partition_graph(community_graph, 10, seed=0)
        assert result.assignments.shape == (community_graph.num_nodes,)
        assert result.assignments.min() >= 0
        assert result.assignments.max() < 10

    def test_balance_within_tolerance(self, community_graph):
        result = partition_graph(community_graph, 10, seed=0)
        sizes = result.part_sizes()
        # Refinement may trade some balance for cut quality, bounded by
        # the partitioner's imbalance cap.
        assert sizes.min() >= 0.4 * sizes.max()
        assert sizes.sum() == community_graph.num_nodes

    def test_part_nodes_consistent(self, community_graph):
        result = partition_graph(community_graph, 5, seed=0)
        total = sum(result.part_nodes(p).size for p in range(5))
        assert total == community_graph.num_nodes

    def test_edge_cut_beats_random(self, community_graph):
        result = partition_graph(community_graph, 8, seed=0)
        # NB: use a seed unrelated to the generator's community draw, or
        # the "random" baseline reproduces the true communities exactly.
        rng = np.random.default_rng(991)
        random_assign = rng.integers(0, 8, community_graph.num_nodes)
        coo = community_graph.to_coo()
        random_cut = int((random_assign[coo.src] != random_assign[coo.dst]).sum())
        assert result.edge_cut < random_cut

    def test_single_part_has_zero_cut(self, community_graph):
        result = partition_graph(community_graph, 1, seed=0)
        assert result.edge_cut == 0

    def test_too_many_parts_rejected(self):
        csr = ring_graph(4).to_csr()
        with pytest.raises(ValueError):
            partition_graph(csr, 5)

    def test_invalid_num_parts_rejected(self, community_graph):
        with pytest.raises(ValueError):
            partition_graph(community_graph, 0)

    def test_deterministic_given_seed(self, community_graph):
        a = partition_graph(community_graph, 6, seed=4)
        b = partition_graph(community_graph, 6, seed=4)
        assert np.array_equal(a.assignments, b.assignments)

    def test_refinement_never_empties_a_part(self):
        """Regression (found by hypothesis): boundary refinement used to
        drain small parts to zero nodes, breaking ClusterGCN batches."""
        from repro.graph.generators import dcsbm_graph
        for seed in range(6):
            coo, _ = dcsbm_graph(200, 1600, num_communities=4, seed=seed)
            result = partition_graph(coo.to_csr(), 40, seed=0)
            assert result.part_sizes().min() >= 1, seed
