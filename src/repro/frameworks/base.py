"""Shared framework machinery: graph objects, batches, sampler wrappers.

A :class:`Framework` instance owns a :class:`FrameworkProfile` and exposes
the user-facing API (load a dataset, build samplers, build conv layers).
Behavioural differences between DGLite and PyGLite live in (a) the profile
constants and (b) the layer implementations in each framework's ``nn``
module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.datasets.base import build_dataset
from repro.datasets.registry import dataset_spec
from repro.datasets.storage import stored_nbytes
from repro.errors import DeviceError, SamplerError
from repro.graph.graph import Graph
from repro.hardware.device import Device, KernelCost
from repro.hardware.machine import Machine
from repro.kernels.adj import SparseAdj
from repro.kernels.transfer import adj_to_device, to_device
from repro.frameworks.profiles import FrameworkProfile
from repro.sampling.base import BlockSample, SubgraphSample
from repro.sampling.cluster import ClusterSampler
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.randomwalk import RandomWalkSampler
from repro.telemetry import runtime as telemetry
from repro.tensor.context import use_profile
from repro.tensor.tensor import Tensor


@dataclass
class FrameworkGraph:
    """A dataset loaded into a framework: graph object + feature storage."""

    framework: "Framework"
    graph: Graph
    machine: Machine
    adj: SparseAdj
    features: Tensor
    labels: np.ndarray
    preloaded_gpu: bool = False
    _csc_ready: bool = False
    _gpu_features: Optional[Tensor] = None
    _gpu_adj: Optional[SparseAdj] = None

    @property
    def stats(self):
        return self.graph.stats

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def label_nbytes_per_node(self) -> float:
        return 4.0 * self.labels.shape[1] if self.labels.ndim == 2 else 8.0

    def preload_to_gpu(self) -> None:
        """Copy the full graph + features to GPU upfront (case study 1).

        Charges one bulk transfer and pins the logical bytes in GPU memory
        — infeasible (OOM) when the graph does not fit, as the paper notes.
        """
        machine = self.machine
        if machine.gpu is None:
            raise DeviceError("cannot pre-load: machine has no GPU")
        with self.framework.activate():
            self._gpu_features = to_device(
                self.features, machine.gpu, machine.pcie, tag="preload-features"
            )
            machine.gpu.memory.alloc(int(self.adj.structure_nbytes()), label="preload-graph")
            self._gpu_adj = adj_to_device(self.adj, machine.gpu, machine.pcie, tag="preload-graph")
        self.preloaded_gpu = True

    def features_on(self, device: Device) -> Tensor:
        if device.kind == "gpu" and self._gpu_features is not None:
            return self._gpu_features
        return self.features

    def adj_on(self, device: Device) -> SparseAdj:
        if device.kind == "gpu" and self._gpu_adj is not None:
            return self._gpu_adj
        return self.adj


@dataclass
class FrameworkBatch:
    """One mini-batch ready for a forward/backward pass.

    ``adjs`` holds one bipartite block per layer (GraphSAGE) or a single
    square subgraph adjacency (ClusterGCN / GraphSAINT).  ``x`` is the
    input feature tensor; ``y`` the labels of the rows the loss reads.
    ``train_rows`` restricts the loss to training nodes for subgraph
    batches (None = all output rows).
    """

    kind: str  # "blocks" | "subgraph"
    adjs: List[SparseAdj]
    x: Tensor
    y: np.ndarray
    y_logical_nbytes: float
    train_rows: Optional[np.ndarray] = None
    # Global ids of the rows of ``x`` (used by the feature-cache movement
    # path to split hits from misses).
    input_nodes: Optional[np.ndarray] = None

    @property
    def num_output_rows(self) -> int:
        return int(self.y.shape[0])


class Framework:
    """Abstract GNN framework; subclasses provide name, profile, nn.

    Passing ``profile`` to the constructor overrides the class default —
    used by the calibration-sensitivity bench to perturb the tuned
    constants without touching global state.
    """

    name: str = "abstract"
    profile: FrameworkProfile = None  # type: ignore[assignment]

    def __init__(self, profile: Optional[FrameworkProfile] = None) -> None:
        if profile is not None:
            self.profile = profile  # instance attribute shadows the class one

    def activate(self):
        """Context manager making this framework's cost profile active."""
        return use_profile(self.profile.cost)

    # ------------------------------------------------------------------
    # data loading (Figure 3)
    # ------------------------------------------------------------------
    def load(self, name: str, machine: Machine, scale: float = 1.0) -> FrameworkGraph:
        """Load a dataset from storage and build the framework graph object.

        Charges (a) the storage read of the logical dataset bytes and
        (b) graph-object construction at this framework's per-node/edge
        rates, with the raw-processing penalty when the dataset is not
        bundled in the framework's dataset module (Observation 1).
        """
        spec = dataset_spec(name)
        graph = build_dataset(spec, scale=scale)
        stats = graph.stats
        with self.activate():
            machine.read_storage(stored_nbytes(stats), tag=f"load:{name}")
            bundled = bool(getattr(spec, self.profile.bundled_flag))
            penalty = 1.0 if bundled else self.profile.raw_process_penalty
            build_seconds = penalty * (
                stats.logical_num_nodes * self.profile.loader_per_node
                + stats.logical_num_edges * self.profile.loader_per_edge
            )
            machine.cpu.execute(
                KernelCost(name="loader.build_graph", fixed_time=build_seconds)
            )
            features = Tensor(
                graph.features, device=machine.cpu, work_scale=graph.node_scale,
            )
            adj = SparseAdj.from_graph(graph, device=machine.cpu)
        return FrameworkGraph(
            framework=self,
            graph=graph,
            machine=machine,
            adj=adj,
            features=features,
            labels=graph.labels,
        )

    # ------------------------------------------------------------------
    # conv layers (implemented by each framework's nn module)
    # ------------------------------------------------------------------
    def conv(self, kind: str, in_features: int, out_features: int, **kwargs):
        raise NotImplementedError

    def conv_kinds(self) -> Sequence[str]:
        """The eight layers of the Figure 5 functional test."""
        return ("gcn", "gcn2", "cheb", "sage", "gat", "gatv2", "tag", "sg")

    def has_fused(self, kind: str) -> bool:
        return kind in self.profile.fused_convs

    # ------------------------------------------------------------------
    # samplers (Figure 4)
    #
    # Every sampler builder defaults to ``seed=0`` so repeated benchmark
    # runs are reproducible; pass ``seed=None`` explicitly to opt into a
    # nondeterministic RNG.
    # ------------------------------------------------------------------
    def neighbor_sampler(self, fgraph: FrameworkGraph, fanouts=(25, 10),
                         batch_size: int = 512, mode: str = "cpu",
                         seed: Optional[int] = 0) -> "WrappedNeighborSampler":
        self._prepare_sampling(fgraph)
        if mode == "gpu" and not self.profile.supports_gpu_sampling:
            raise SamplerError(f"{self.name} has no GPU-based neighborhood sampler")
        if mode == "uva" and not self.profile.supports_uva_sampling:
            raise SamplerError(f"{self.name} has no UVA-based neighborhood sampler")
        return WrappedNeighborSampler(self, fgraph, fanouts, batch_size, mode, seed)

    def cluster_sampler(self, fgraph: FrameworkGraph, num_parts: int = 2000,
                        parts_per_batch: int = 50,
                        seed: Optional[int] = 0) -> "WrappedClusterSampler":
        self._prepare_sampling(fgraph)
        return WrappedClusterSampler(self, fgraph, num_parts, parts_per_batch, seed)

    def saint_sampler(self, fgraph: FrameworkGraph, num_roots: int = 3000,
                      walk_length: int = 2,
                      seed: Optional[int] = 0) -> "WrappedSaintSampler":
        self._prepare_sampling(fgraph)
        return WrappedSaintSampler(self, fgraph, num_roots, walk_length, seed)

    def extension_sampler(self, fgraph: FrameworkGraph, kind: str,
                          seed: Optional[int] = 0, **kwargs):
        """Build one of the non-benchmarked samplers (see
        :mod:`repro.frameworks.extensions`): "saint_node", "saint_edge",
        "fastgcn", or "ladies"."""
        from repro.frameworks.extensions import make_extension_sampler

        return make_extension_sampler(self, fgraph, kind, seed=seed, **kwargs)

    def _prepare_sampling(self, fgraph: FrameworkGraph) -> None:
        """One-time CSR -> CSC conversion (PyG requirement, Observation 2)."""
        if not self.profile.requires_csc or fgraph._csc_ready:
            return
        seconds = self.profile.csc_convert_per_edge * fgraph.stats.logical_num_edges
        with self.activate():
            fgraph.machine.cpu.execute(
                KernelCost(name="csc.convert", fixed_time=seconds)
            )
        fgraph._csc_ready = True


# ----------------------------------------------------------------------
# sampler wrappers: algorithm + profile-charged cost + batch assembly
# ----------------------------------------------------------------------
class _SamplerWrapper:
    """Common charging/assembly logic for the three wrapped samplers."""

    kind: str = ""

    def __init__(self, framework: Framework, fgraph: FrameworkGraph, mode: str = "cpu"):
        if mode not in ("cpu", "gpu", "uva"):
            raise SamplerError(f"unknown sampling mode {mode!r}")
        self.framework = framework
        self.fgraph = fgraph
        self.mode = mode

    @property
    def machine(self) -> Machine:
        return self.fgraph.machine

    def _charge_sampling(self, items: float, fetch_bytes: float, hops: int = 1) -> None:
        """Convert sampler work items into charged device time."""
        machine = self.machine
        profile = self.framework.profile
        if self.mode == "cpu":
            # The two CPU halves are separate datapipe stages; charging
            # them back-to-back here keeps the serial schedule identical.
            self._charge_sample_kernel(items)
            self._charge_fetch_kernel(fetch_bytes)
            return
        registry = telemetry.metrics()
        if registry is not None:
            labels = {"framework": self.framework.name, "kind": self.kind,
                      "mode": self.mode}
            registry.counter("sampler.batches", **labels).inc()
            registry.counter("sampler.items", **labels).inc(items)
            registry.counter("sampler.fetch_bytes", **labels).inc(fetch_bytes)

        gpu = machine.gpu
        if gpu is None:
            raise DeviceError("GPU sampling requested on a machine without GPU")
        launch = profile.gpu_sampler_per_hop_launch * max(1, hops)
        if self.mode == "gpu":
            seconds = launch + items * profile.gpu_sampler_per_item
            gpu.execute(KernelCost(name=f"{self.kind}.sample.gpu", fixed_time=seconds))
            gpu.execute(
                KernelCost(
                    name=f"{self.kind}.fetch.gpu",
                    bytes_moved=2.0 * fetch_bytes,
                    compute_eff=0.7,
                    memory_eff=0.7,
                )
            )
        else:  # uva: zero-copy reads of pinned host memory
            structure_bytes = items * 16.0  # indices + offsets per element
            uva_seconds = machine.pcie.uva_read_time(structure_bytes + fetch_bytes)
            seconds = launch + max(items * profile.gpu_sampler_per_item, uva_seconds)
            gpu.execute(KernelCost(name=f"{self.kind}.sample.uva", fixed_time=seconds))
            machine.pcie.record_uva(structure_bytes + fetch_bytes)

    def _charge_sample_kernel(self, items: float, hops: int = 1) -> None:
        """The CPU structure-sampling half (datapipe ``NeighborSampler``)."""
        profile = self.framework.profile
        registry = telemetry.metrics()
        if registry is not None:
            labels = {"framework": self.framework.name, "kind": self.kind,
                      "mode": self.mode}
            registry.counter("sampler.batches", **labels).inc()
            registry.counter("sampler.items", **labels).inc(items)
        costs = profile.sampler_costs(self.kind)
        seconds = costs.per_batch + items * costs.per_item
        self.machine.cpu.execute(
            KernelCost(name=f"{self.kind}.sample", fixed_time=seconds)
        )

    def _charge_fetch_kernel(self, fetch_bytes: float) -> None:
        """The feature-gather half (datapipe ``FeatureFetcher``).

        Gathers rows out of the feature matrix, which lives on GPU when
        the experiment pre-loaded it (case study 1).
        """
        registry = telemetry.metrics()
        if registry is not None:
            labels = {"framework": self.framework.name, "kind": self.kind,
                      "mode": self.mode}
            registry.counter("sampler.fetch_bytes", **labels).inc(fetch_bytes)
        fetch_device = self._feature_device()
        eff = self.framework.profile.cost.eff("index", fetch_device.kind)
        fetch_device.execute(
            KernelCost(
                name=f"{self.kind}.fetch",
                bytes_moved=2.0 * fetch_bytes,
                compute_eff=eff[0],
                memory_eff=eff[1],
            )
        )

    def _feature_device(self) -> Device:
        """Where fetched batch features land."""
        if self.mode in ("gpu", "uva") or self.fgraph.preloaded_gpu:
            return self.machine.gpu
        return self.machine.cpu


class _BlockSamplerWrapper(_SamplerWrapper):
    """Shared assembly for block-batch samplers (neighbor / layer-wise).

    The datapipe splits a batch into two CPU stages: ``sample_structure``
    (run the sampling algorithm, charge the sample kernel) and
    ``assemble_features`` (charge the feature gather, build the
    :class:`FrameworkBatch`).  The serial ``epoch()``/``sample()`` paths
    are expressed through the same split so both schedules charge
    identical kernels in identical order.
    """

    def _hops(self) -> int:
        return 1

    def epoch_requests(self, shuffle: bool = True) -> Iterator[np.ndarray]:
        """The ``ItemSampler`` stage: seed-node batches in epoch order."""
        train = self.fgraph.graph.train_nodes()
        if shuffle:
            train = self.algorithm.rng.permutation(train)
        step = self.algorithm.actual_batch_size
        for start in range(0, train.size, step):
            roots = train[start:start + step]
            if roots.size:
                yield roots

    def sample_structure(self, roots: np.ndarray) -> BlockSample:
        """The ``NeighborSampler`` stage: blocks + the sample kernel."""
        with self.framework.activate():
            sample = self.algorithm.sample(roots)
            if self.mode == "cpu":
                self._charge_sample_kernel(sample.work.items,
                                           hops=self._hops())
            return sample

    def assemble_features(self, sample: BlockSample) -> FrameworkBatch:
        """The ``FeatureFetcher`` stage: gather rows, build the batch."""
        with self.framework.activate():
            if self.mode == "cpu":
                self._charge_fetch_kernel(sample.work.fetch_bytes)
            else:
                self._charge_sampling(sample.work.items,
                                      sample.work.fetch_bytes,
                                      hops=self._hops())
            return self._build_batch(sample)

    def _assemble(self, sample: BlockSample) -> FrameworkBatch:
        self._charge_sampling(
            sample.work.items, sample.work.fetch_bytes, hops=self._hops()
        )
        return self._build_batch(sample)

    def _build_batch(self, sample: BlockSample) -> FrameworkBatch:
        registry = telemetry.metrics()
        if registry is not None:
            labels = {"kind": self.kind}
            edges = registry.histogram("sampler.block_edges", **labels)
            nodes = registry.histogram("sampler.block_nodes", **labels)
            for block in sample.blocks:
                edges.observe(block.src.size)
                nodes.observe(block.dst_nodes.size)
        device = self._feature_device()
        graph = self.fgraph.graph
        # Sampler blocks arrive relabeled and dst-grouped (block_locals /
        # induced_subgraph order="dst"), so skip the canonicalizing argsort.
        adjs = [
            SparseAdj.from_sorted_block(
                block.src,
                block.dst,
                num_src=block.src_nodes.size,
                num_dst=block.dst_nodes.size,
                device=self.machine.cpu if self.mode == "cpu" else device,
                node_scale=block.node_scale,
                edge_scale=block.edge_scale,
            )
            for block in sample.blocks
        ]
        input_scale = sample.blocks[0].edge_scale  # input frontier ratio
        features = self.fgraph.features_on(device)
        x = Tensor(
            features.data[sample.input_nodes],
            device=device,
            work_scale=max(1.0, input_scale),
        )
        y = graph.labels[sample.output_nodes]
        y_bytes = sample.output_nodes.size * graph.node_scale * (
            4.0 * y.shape[1] if y.ndim == 2 else 8.0
        )
        return FrameworkBatch(kind="blocks", adjs=adjs, x=x, y=y,
                              y_logical_nbytes=y_bytes,
                              input_nodes=sample.input_nodes)

    def num_batches(self) -> int:
        return self.algorithm.num_batches(int(self.fgraph.graph.train_mask.sum()))

    def sample(self, roots: np.ndarray) -> FrameworkBatch:
        with self.framework.activate():
            return self._assemble(self.algorithm.sample(roots))

    def epoch(self, shuffle: bool = True) -> Iterator[FrameworkBatch]:
        for roots in self.epoch_requests(shuffle):
            yield self.sample(roots)


class WrappedNeighborSampler(_BlockSamplerWrapper):
    """GraphSAGE neighborhood sampler with CPU / GPU / UVA execution."""

    kind = "neighbor"

    def __init__(self, framework, fgraph, fanouts, batch_size, mode, seed):
        super().__init__(framework, fgraph, mode)
        if mode == "gpu" and not fgraph.preloaded_gpu:
            raise SamplerError(
                "GPU-based sampling requires the graph pre-loaded to GPU "
                "(call fgraph.preload_to_gpu() first)"
            )
        self.algorithm = NeighborSampler(fgraph.graph, fanouts, batch_size, seed)

    def _hops(self) -> int:
        return len(self.algorithm.fanouts)


class _SubgraphSamplerWrapper(_SamplerWrapper):
    """Shared assembly for subgraph-batch samplers (cluster / SAINT).

    Subgraph samplers have no separate seed-node requests: the epoch
    stream itself yields samples, so ``epoch_requests`` returns the
    algorithm's batch generator (pure numpy, charges nothing) and
    ``sample_structure`` prices the structure work it produced.
    """

    def epoch_requests(self) -> Iterator[SubgraphSample]:
        if hasattr(self, "ensure_partitioned"):
            self.ensure_partitioned()
        return self.algorithm.epoch_batches()

    def sample_structure(self, sample: SubgraphSample) -> SubgraphSample:
        with self.framework.activate():
            self._charge_sample_kernel(sample.work.items)
            return sample

    def assemble_features(self, sample: SubgraphSample) -> FrameworkBatch:
        with self.framework.activate():
            self._charge_fetch_kernel(sample.work.fetch_bytes)
            return self._build_batch(sample)

    def _assemble(self, sample: SubgraphSample) -> FrameworkBatch:
        self._charge_sampling(sample.work.items, sample.work.fetch_bytes)
        return self._build_batch(sample)

    def _build_batch(self, sample: SubgraphSample) -> FrameworkBatch:
        registry = telemetry.metrics()
        if registry is not None:
            labels = {"kind": self.kind}
            registry.histogram("sampler.subgraph_edges", **labels).observe(sample.src.size)
            registry.histogram("sampler.subgraph_nodes", **labels).observe(sample.num_nodes)
        device = self._feature_device()
        graph = self.fgraph.graph
        adj = SparseAdj.from_sorted_block(
            sample.src,
            sample.dst,
            num_src=sample.num_nodes,
            num_dst=sample.num_nodes,
            device=device,
            node_scale=sample.node_scale,
            edge_scale=sample.edge_scale,
        )
        features = self.fgraph.features_on(device)
        x = Tensor(
            features.data[sample.nodes],
            device=device,
            work_scale=sample.node_scale,
        )
        y = graph.labels[sample.nodes]
        train_rows = np.nonzero(graph.train_mask[sample.nodes])[0]
        y_bytes = sample.num_nodes * sample.node_scale * (
            4.0 * y.shape[1] if y.ndim == 2 else 8.0
        )
        return FrameworkBatch(kind="subgraph", adjs=[adj], x=x, y=y,
                              y_logical_nbytes=y_bytes, train_rows=train_rows,
                              input_nodes=sample.nodes)


class WrappedClusterSampler(_SubgraphSamplerWrapper):
    """ClusterGCN sampler: charges METIS once, then cluster aggregation."""

    kind = "cluster"

    def __init__(self, framework, fgraph, num_parts, parts_per_batch, seed):
        super().__init__(framework, fgraph, mode="cpu")
        self.algorithm = ClusterSampler(fgraph.graph, num_parts, parts_per_batch, seed)
        self._partitioned = False

    def ensure_partitioned(self) -> None:
        """Run (and charge) the one-time METIS-substitute partitioning."""
        if self._partitioned:
            return
        with self.framework.activate():
            _ = self.algorithm.partition  # actually compute it
            seconds = (
                self.framework.profile.metis_per_edge
                * self.algorithm.partition_work_items
            )
            self.machine.cpu.execute(KernelCost(name="metis.partition", fixed_time=seconds))
        self._partitioned = True

    def num_batches(self) -> int:
        return self.algorithm.num_batches()

    def sample(self, part_ids: Optional[np.ndarray] = None) -> FrameworkBatch:
        self.ensure_partitioned()
        with self.framework.activate():
            return self._assemble(self.algorithm.sample(part_ids))

    def epoch(self) -> Iterator[FrameworkBatch]:
        self.ensure_partitioned()
        with self.framework.activate():
            for sample in self.algorithm.epoch_batches():
                yield self._assemble(sample)


class WrappedSaintSampler(_SubgraphSamplerWrapper):
    """GraphSAINT random-walk sampler."""

    kind = "saint_rw"

    def __init__(self, framework, fgraph, num_roots, walk_length, seed):
        super().__init__(framework, fgraph, mode="cpu")
        self.algorithm = RandomWalkSampler(fgraph.graph, num_roots, walk_length, seed)

    def num_batches(self) -> int:
        return self.algorithm.num_batches()

    def sample(self, roots: Optional[np.ndarray] = None) -> FrameworkBatch:
        with self.framework.activate():
            return self._assemble(self.algorithm.sample(roots))

    def epoch(self) -> Iterator[FrameworkBatch]:
        with self.framework.activate():
            for sample in self.algorithm.epoch_batches():
                yield self._assemble(sample)
