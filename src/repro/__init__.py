"""repro — reproduction of "Characterizing the Efficiency of Graph Neural
Network Frameworks with a Magnifying Glass" (IISWC 2022).

Public API tour:

>>> from repro import get_framework, paper_testbed
>>> fw = get_framework("dglite")
>>> machine = paper_testbed()
>>> fgraph = fw.load("ppi", machine)            # Figure 3 workload
>>> sampler = fw.neighbor_sampler(fgraph)       # Figure 4 workload
>>> conv = fw.conv("gcn", 50, 256)              # Figure 5 workload

End-to-end experiments (Figures 6-24) live in :mod:`repro.bench`:

>>> from repro.bench import run_training_experiment
>>> result = run_training_experiment("dglite", "ppi", "graphsage",
...                                  placement="cpu", epochs=2)
>>> result.phase_fraction("sampling")  # doctest: +SKIP
"""

from repro.frameworks import get_framework
from repro.hardware.machine import Machine, paper_testbed
from repro.datasets import get_dataset, list_datasets
from repro.power import EnergyMonitor
from repro.metrics import gps_up

__version__ = "1.0.0"

__all__ = [
    "EnergyMonitor",
    "Machine",
    "__version__",
    "get_dataset",
    "get_framework",
    "gps_up",
    "list_datasets",
    "paper_testbed",
]
