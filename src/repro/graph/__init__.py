"""Graph data structures: adjacency formats, the Graph container, generators.

The adjacency classes are deliberately format-explicit (COO / CSR / CSC)
because format conversions are a real cost the paper measures: PyG's
samplers require CSC and the conversion "turns out to be quite slow on
large datasets" (Observation 2).
"""

from repro.graph.formats import AdjacencyCOO, AdjacencyCSR, AdjacencyCSC
from repro.graph.graph import Graph, GraphStats, Split
from repro.graph import generators
from repro.graph.partition import partition_graph, PartitionResult

__all__ = [
    "AdjacencyCOO",
    "AdjacencyCSC",
    "AdjacencyCSR",
    "Graph",
    "GraphStats",
    "PartitionResult",
    "Split",
    "generators",
    "partition_graph",
]
