"""Cost-accounted sparse kernels shared by both framework implementations.

These are the computational primitives the paper's kernel-level analysis
talks about:

* :func:`spmm` — fused (generalized) sparse-dense matmul, DGL's
  ``g.update_all()`` path and PyG's ``matmul()`` on a SparseTensor.
* :func:`gather` / :func:`scatter_add` — PyG's unfused gather-and-scatter
  ``MessagePassing`` path; the gather materializes an ``E x F`` message
  buffer (the source of PyG's OOMs on large graphs).
* :func:`sddmm_u_add_v` / :func:`segment_softmax` — per-edge attention
  primitives (GAT/GATv2), DGL's g-SDDMM path.

Every kernel runs real numpy/scipy math and charges logical-scale roofline
cost to the tensor's device under the active framework profile.  The
kernels keep two schedules for the same math — a ``reduceat``/CSR-reuse
fast path and the naive ``np.add.at``/scipy-rebuild reference (toggled by
:func:`use_reference_kernels`) — with identical charged cost either way;
see :mod:`repro.kernels.config` and ``docs/kernels.md``.
"""

from repro.kernels.adj import SparseAdj
from repro.kernels.config import fastpath_enabled, use_reference_kernels
from repro.kernels.spmm import spmm
from repro.kernels.scatter import gather, scatter_add, scatter_mean
from repro.kernels.sddmm import (
    fused_gatv2_scores,
    sddmm_u_add_v,
    sddmm_u_dot_v,
    segment_softmax,
)
from repro.kernels.segment import segment_sum, segment_mean, segment_max
from repro.kernels.transfer import graph_bytes, to_device

__all__ = [
    "SparseAdj",
    "fastpath_enabled",
    "fused_gatv2_scores",
    "gather",
    "graph_bytes",
    "use_reference_kernels",
    "scatter_add",
    "scatter_mean",
    "sddmm_u_add_v",
    "sddmm_u_dot_v",
    "segment_max",
    "segment_mean",
    "segment_softmax",
    "segment_sum",
    "spmm",
    "to_device",
]
