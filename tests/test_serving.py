"""Tests for the online serving layer (workload, batcher, engine, schema)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import BenchmarkError
from repro.serving import (
    ServeConfig,
    build_serve_report,
    form_batches,
    generate_trace,
    nearest_rank,
    run_serving_experiment,
    validate_serve_payload,
    write_serve_report,
)
from repro.serving.latency import LatencyAccountant
from repro.serving.workload import Request


class TestWorkload:
    @pytest.mark.parametrize("kind", ("poisson", "bursty", "diurnal"))
    def test_same_seed_same_trace(self, kind):
        a = generate_trace(kind, 32, 100.0, 1000, seed=7)
        b = generate_trace(kind, 32, 100.0, 1000, seed=7)
        assert [r.arrival for r in a] == [r.arrival for r in b]
        assert all(np.array_equal(x.nodes, y.nodes) for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = generate_trace("poisson", 32, 100.0, 1000, seed=0)
        b = generate_trace("poisson", 32, 100.0, 1000, seed=1)
        assert [r.arrival for r in a] != [r.arrival for r in b]

    @pytest.mark.parametrize("kind", ("poisson", "bursty", "diurnal"))
    def test_arrivals_strictly_ordered(self, kind):
        arrivals = [r.arrival for r in
                    generate_trace(kind, 64, 200.0, 100, seed=3)]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_poisson_mean_rate(self):
        trace = generate_trace("poisson", 4000, 100.0, 10, seed=0)
        achieved = len(trace) / trace[-1].arrival
        assert achieved == pytest.approx(100.0, rel=0.1)

    def test_bursty_alternates_fast_and_slow_windows(self):
        trace = generate_trace("bursty", 32, 100.0, 10, seed=0,
                               burst_factor=4.0, burst_width=8)
        gaps = np.diff([0.0] + [r.arrival for r in trace])
        hot = np.concatenate([gaps[0:8], gaps[16:24]]).mean()
        cold = np.concatenate([gaps[8:16], gaps[24:32]]).mean()
        assert cold > hot

    def test_nodes_within_bounds(self):
        trace = generate_trace("poisson", 50, 100.0, 7, seed=0,
                               nodes_per_request=3)
        for request in trace:
            assert request.nodes.shape == (3,)
            assert request.nodes.min() >= 0 and request.nodes.max() < 7

    def test_shifted_moves_arrival_only(self):
        request = generate_trace("poisson", 1, 100.0, 10, seed=0)[0]
        moved = request.shifted(5.0)
        assert moved.arrival == request.arrival + 5.0
        assert moved.request_id == request.request_id
        assert np.array_equal(moved.nodes, request.nodes)

    def test_bad_params_rejected(self):
        with pytest.raises(BenchmarkError):
            generate_trace("zipf", 10, 100.0, 10)
        with pytest.raises(BenchmarkError):
            generate_trace("poisson", 0, 100.0, 10)
        with pytest.raises(BenchmarkError):
            generate_trace("poisson", 10, -1.0, 10)


def _requests(arrivals):
    return [Request(i, t, np.array([i], dtype=np.int64))
            for i, t in enumerate(arrivals)]


class TestBatcher:
    def test_closes_on_max_size(self):
        batches = form_batches(_requests([0.0, 0.001, 0.002, 0.003]),
                               max_size=2, max_wait=1.0)
        assert [b.size for b in batches] == [2, 2]
        assert all(b.closed_by == "size" for b in batches)
        # A size-closed batch dispatches the instant it fills.
        assert batches[0].formed_at == 0.001

    def test_closes_on_deadline(self):
        batches = form_batches(_requests([0.0, 0.001, 1.0]),
                               max_size=8, max_wait=0.01)
        assert [b.size for b in batches] == [2, 1]
        assert batches[0].closed_by == "deadline"
        assert batches[0].formed_at == pytest.approx(0.01)
        # The batcher cannot see the future: the last batch holds until
        # its deadline even though no further request will arrive.
        assert batches[1].formed_at == pytest.approx(1.01)

    def test_budget_never_exceeded(self):
        trace = generate_trace("bursty", 200, 500.0, 50, seed=5)
        for max_size, budget in ((4, 0.002), (16, 0.01), (64, 0.05)):
            for batch in form_batches(trace, max_size, budget):
                for request in batch.requests:
                    delay = batch.formed_at - request.arrival
                    assert -1e-12 <= delay <= budget + 1e-12
                assert batch.max_wait() <= budget + 1e-12

    def test_every_request_batched_exactly_once(self):
        trace = generate_trace("poisson", 64, 300.0, 50, seed=2)
        batches = form_batches(trace, 8, 0.01)
        ids = [r.request_id for b in batches for r in b.requests]
        assert sorted(ids) == list(range(64))

    def test_nodes_are_deduplicated_union(self):
        requests = [Request(0, 0.0, np.array([3, 1], dtype=np.int64)),
                    Request(1, 0.0, np.array([1, 2], dtype=np.int64))]
        batch = form_batches(requests, 4, 0.01)[0]
        assert np.array_equal(batch.nodes, [1, 2, 3])

    def test_unordered_trace_rejected(self):
        with pytest.raises(BenchmarkError):
            form_batches(_requests([1.0, 0.5]), 4, 0.01)

    def test_bad_knobs_rejected(self):
        with pytest.raises(BenchmarkError):
            form_batches([], 0, 0.01)
        with pytest.raises(BenchmarkError):
            form_batches([], 4, -0.01)


class TestLatencyAccountant:
    def test_nearest_rank_is_exact(self):
        values = [float(v) for v in range(1, 101)]
        assert nearest_rank(values, 0.50) == 50.0
        assert nearest_rank(values, 0.95) == 95.0
        assert nearest_rank(values, 0.99) == 99.0
        assert nearest_rank(values, 1.00) == 100.0
        assert nearest_rank([], 0.5) == 0.0

    def test_summary_and_throughput(self):
        accountant = LatencyAccountant()
        for i, t in enumerate((0.1, 0.2, 0.3)):
            accountant.complete(Request(i, 0.0, np.array([0])), t)
        summary = accountant.summary()
        assert summary["p50"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)
        assert accountant.throughput(3.0) == pytest.approx(1.0)

    def test_negative_latency_rejected(self):
        accountant = LatencyAccountant()
        with pytest.raises(ValueError):
            accountant.complete(Request(0, 1.0, np.array([0])), 0.5)


def _config(**overrides):
    base = dict(framework="dglite", dataset="ppi", rate=200.0,
                num_requests=24, budget_s=0.02, max_batch=8,
                dataset_scale=0.3, seed=0)
    base.update(overrides)
    return ServeConfig(**base)


class TestEngine:
    def test_all_requests_complete(self):
        result = run_serving_experiment(_config())
        assert result.completed == 24 and result.shed == 0
        assert len(result.latencies) == 24
        assert all(lat > 0 for lat in result.latencies)
        assert result.makespan > 0 and result.throughput > 0

    def test_budget_never_exceeded_on_virtual_clock(self):
        result = run_serving_experiment(_config(trace="bursty"))
        assert result.budget_violations == 0
        assert result.max_batch_wait <= result.config.budget_s + 1e-9

    def test_cpu_placement_skips_cache_and_pcie(self):
        result = run_serving_experiment(_config(placement="cpu"))
        assert result.completed == 24
        assert result.cache_hits == 0 and result.cache_misses == 0
        assert result.phases["data_movement"] == 0.0

    def test_warm_cache_records_hits(self):
        result = run_serving_experiment(_config(cache_fraction=0.5))
        assert result.cache_hits > 0
        assert 0.0 < result.hit_rate < 1.0

    def test_pipelining_shortens_makespan(self):
        serial = run_serving_experiment(_config(pipeline="off", rate=2000.0))
        deep = run_serving_experiment(_config(pipeline="depth-4",
                                              rate=2000.0))
        assert deep.makespan <= serial.makespan
        # Same completions either way: overlap must never drop requests.
        assert deep.completed == serial.completed == 24

    def test_same_seed_is_deterministic(self):
        a = run_serving_experiment(_config())
        b = run_serving_experiment(_config())
        assert a.latencies == b.latencies
        assert a.makespan == b.makespan and a.total_energy == b.total_energy

    def test_fastpath_cost_invariance(self):
        fast = run_serving_experiment(_config(), fastpath=True)
        ref = run_serving_experiment(_config(), fastpath=False)
        assert fast.makespan == ref.makespan
        assert fast.total_energy == ref.total_energy

    def test_gpu_placement_rejected(self):
        with pytest.raises(BenchmarkError):
            _config(placement="gpu")

    def test_pipeline_validation_shared_with_train(self):
        with pytest.raises(BenchmarkError):
            ServeConfig(framework="dglite", dataset="ppi",
                        placement="gpu", pipeline="depth-2")


_FAULT_PLAN = {
    "seed": 0,
    "faults": [{"site": "storage.read", "kind": "error", "at": 2,
                "count": 9}],
    "policies": {"storage.read": {"max_retries": 1, "backoff": 0.001}},
}


class TestDegradedModes:
    def test_shed_drops_failed_batches(self):
        result = run_serving_experiment(_config(degraded_mode="shed"),
                                        fault_plan=_FAULT_PLAN)
        assert result.shed > 0
        assert result.completed + result.shed == 24
        assert result.resilience["injected"] > 0

    def test_stale_serves_within_budget(self):
        result = run_serving_experiment(_config(degraded_mode="stale"),
                                        fault_plan=_FAULT_PLAN)
        assert result.completed == 24 and result.shed == 0
        assert result.stale > 0
        assert result.budget_violations == 0

    def test_stale_without_cache_sheds(self):
        result = run_serving_experiment(
            _config(degraded_mode="stale", cache_fraction=0.0),
            fault_plan=_FAULT_PLAN)
        assert result.stale == 0 and result.shed > 0


class TestSchema:
    def _report(self):
        config = _config()
        return config, build_serve_report(
            config, [run_serving_experiment(config)])

    def test_valid_report_passes(self):
        _, report = self._report()
        assert validate_serve_payload(report) == []

    def test_report_is_byte_identical_across_runs(self, tmp_path):
        config, report_a = self._report()
        _, report_b = self._report()
        path_a = write_serve_report(tmp_path / "a.json", report_a)
        path_b = write_serve_report(tmp_path / "b.json", report_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_report_has_no_volatile_provenance(self):
        _, report = self._report()
        text = json.dumps(report)
        for banned in ("timestamp", "wall", "git", "hostname"):
            assert banned not in text

    def test_validator_catches_problems(self):
        assert validate_serve_payload([]) == ["report is not a JSON object"]
        assert any("schema" in p for p in validate_serve_payload({}))
        _, report = self._report()
        del report["results"][0]["latency"]["p99"]
        assert any("p99" in p for p in validate_serve_payload(report))
        report["results"][0]["latency"]["p99"] = 0.1
        report["schema"] = "repro.serve/999"
        assert any("unknown schema" in p
                   for p in validate_serve_payload(report))

    def test_writer_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_serve_report(tmp_path / "bad.json", {"schema": "nope"})


class TestServeCli:
    def test_serve_smoke(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        assert main(["serve", "--dataset", "ppi", "--scale", "0.3",
                     "--requests", "12", "--rates", "150",
                     "--budget-ms", "20", "--max-batch", "8",
                     "--framework", "dglite", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "p99" in printed and "DGL-serve" in printed
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.serve/1"
        assert validate_serve_payload(report) == []

    def test_train_pipeline_on_device_is_parse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["train", "--placement", "gpu", "--pipeline", "depth-2"])
        assert excinfo.value.code == 2
        assert "cannot be combined" in capsys.readouterr().err

    @pytest.mark.parametrize("placement", ("gpu", "uvagpu"))
    def test_uva_placements_also_rejected(self, placement):
        with pytest.raises(SystemExit) as excinfo:
            main(["train", "--placement", placement,
                  "--pipeline", "depth-4"])
        assert excinfo.value.code == 2

    def test_bad_rate_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--rates", "abc"])
