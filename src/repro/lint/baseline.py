"""Baseline files: grandfathered findings that don't gate CI.

A baseline lets the linter land strict rules on a codebase with existing
violations: current findings are recorded once, the gate then fails only
on *new* findings, and the recorded debt burns down monotonically (the
shipped ``.repro-lint-baseline.json`` is empty — ``src/repro`` is clean).

Matching is line-insensitive: a finding is identified by
``(path, rule, message)`` with a count, so unrelated edits that shift
line numbers don't resurrect grandfathered findings, while adding a
*second* instance of the same pattern in the same file is still new.

File format (JSON)::

    {
      "version": 1,
      "findings": [
        {"path": "src/x.py", "rule": "HOTLOOP", "message": "...", "count": 2}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.lint.engine import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

BaselineKey = Tuple[str, str, str]  # (path, rule, message)


class BaselineError(ValueError):
    """Raised for unreadable or structurally invalid baseline files."""


def load_baseline(path: Union[str, Path]) -> Dict[BaselineKey, int]:
    """Read a baseline file into a ``key -> count`` map."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(f"baseline {path} lacks a 'findings' list")
    version = payload.get("version", BASELINE_VERSION)
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has version {version}, expected {BASELINE_VERSION}"
        )
    counts: Dict[BaselineKey, int] = {}
    for entry in payload["findings"]:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {path}: entries must be objects")
        try:
            key = (str(entry["path"]), str(entry["rule"]), str(entry["message"]))
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path}: entry missing field {exc}"
            ) from exc
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def save_baseline(findings: Iterable[Finding], path: Union[str, Path]) -> int:
    """Write ``findings`` as a fresh baseline; returns entries written."""
    counter: Counter = Counter(f.baseline_key() for f in findings)
    entries: List[dict] = [
        {"path": key[0], "rule": key[1], "message": key[2], "count": count}
        for key, count in sorted(counter.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
