"""Tests for the logical memory ledger (simulated OOM)."""

import pytest

from repro.errors import OutOfMemoryError
from repro.hardware.memory import MemoryLedger, ScopedAllocation


class TestAllocation:
    def test_alloc_tracks_usage(self):
        ledger = MemoryLedger("dev", capacity=1000)
        ledger.alloc(400, "a")
        assert ledger.in_use == 400
        assert ledger.free == 600

    def test_exceeding_capacity_raises_oom(self):
        ledger = MemoryLedger("dev", capacity=1000)
        ledger.alloc(900)
        with pytest.raises(OutOfMemoryError) as err:
            ledger.alloc(200)
        assert err.value.requested == 200
        assert err.value.in_use == 900
        assert err.value.capacity == 1000
        assert "dev" in str(err.value)

    def test_failed_alloc_leaves_usage_unchanged(self):
        ledger = MemoryLedger("dev", capacity=100)
        with pytest.raises(OutOfMemoryError):
            ledger.alloc(200)
        assert ledger.in_use == 0

    def test_exact_fit_allowed(self):
        ledger = MemoryLedger("dev", capacity=100)
        ledger.alloc(100)
        assert ledger.free == 0

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryLedger("dev", 100).alloc(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryLedger("dev", 0)


class TestRelease:
    def test_release_returns_bytes(self):
        ledger = MemoryLedger("dev", capacity=100)
        alloc = ledger.alloc(60)
        ledger.release(alloc)
        assert ledger.in_use == 0

    def test_release_is_idempotent(self):
        """Tensor finalizers may fire after release_all tore the ledger down."""
        ledger = MemoryLedger("dev", capacity=100)
        alloc = ledger.alloc(60)
        ledger.release(alloc)
        ledger.release(alloc)  # no error, no double-credit
        assert ledger.in_use == 0

    def test_release_all(self):
        ledger = MemoryLedger("dev", capacity=100)
        a = ledger.alloc(30)
        ledger.alloc(30)
        ledger.release_all()
        assert ledger.in_use == 0
        ledger.release(a)  # idempotent after release_all
        assert ledger.in_use == 0


class TestPeak:
    def test_peak_tracks_high_water_mark(self):
        ledger = MemoryLedger("dev", capacity=100)
        a = ledger.alloc(70)
        ledger.release(a)
        ledger.alloc(20)
        assert ledger.peak == 70
        assert ledger.in_use == 20

    def test_reset_peak(self):
        ledger = MemoryLedger("dev", capacity=100)
        a = ledger.alloc(70)
        ledger.release(a)
        ledger.reset_peak()
        assert ledger.peak == 0


class TestScopedAllocation:
    def test_frees_on_exit(self):
        ledger = MemoryLedger("dev", capacity=100)
        with ScopedAllocation(ledger, 50):
            assert ledger.in_use == 50
        assert ledger.in_use == 0

    def test_frees_on_exception(self):
        ledger = MemoryLedger("dev", capacity=100)
        with pytest.raises(RuntimeError):
            with ScopedAllocation(ledger, 50):
                raise RuntimeError("boom")
        assert ledger.in_use == 0

    def test_would_fit(self):
        ledger = MemoryLedger("dev", capacity=100)
        ledger.alloc(80)
        assert ledger.would_fit(20)
        assert not ledger.would_fit(21)
