"""Phase profiler: attributes virtual time to the paper's four phases.

Since the unified telemetry layer landed, ``PhaseProfiler`` is a thin
compatibility shim over :class:`repro.telemetry.spans.SpanTracer`: each
``phase(name)`` block opens a span with ``category="phase"`` and the
accumulated per-phase seconds are the tracer's exclusive-time rollup.
Phases may now nest — a nested phase's time is attributed to the inner
phase only, so totals never double-count and flat usage reproduces the
pre-telemetry numbers exactly (the acceptance bar is 1e-9 agreement).

When a :func:`repro.telemetry.runtime` session is active on the *same*
virtual clock, the profiler adopts the ambient tracer so its phase spans
land in the session's exported artifacts; otherwise it owns a private
tracer and behaves exactly as before.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.simtime import VirtualClock
from repro.telemetry import runtime
from repro.telemetry.spans import PHASE_CATEGORY, SpanTracer

#: The paper's runtime breakdown (Figures 6, 10, 14, 19, 21).
PHASES = ("data_loading", "sampling", "data_movement", "training")


class PhaseProfiler:
    """Accumulates virtual seconds per named phase.

    ``phase(name)`` measures a block against the clock; ``add`` credits
    extrapolated time (used when representative batches stand in for a
    full epoch).
    """

    def __init__(self, clock: VirtualClock,
                 tracer: Optional[SpanTracer] = None) -> None:
        self.clock = clock
        if tracer is None:
            ambient = runtime.tracer()
            if ambient is not None and ambient.clock is clock:
                tracer = ambient
            else:
                tracer = SpanTracer(clock)
        self.tracer = tracer

    def phase(self, name: str):
        """Measure a block as a phase span (nesting is allowed; nested
        phase time is attributed exclusively to the inner phase)."""
        return self.tracer.span(name, category=PHASE_CATEGORY)

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to a phase without touching the clock."""
        self.tracer.credit(name, seconds)

    def seconds(self, name: str) -> float:
        return self.tracer.phase_rollup().get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.tracer.phase_rollup().values())

    def snapshot(self) -> Dict[str, float]:
        return self.tracer.phase_rollup()

    def fractions(self) -> Dict[str, float]:
        rollup = self.tracer.phase_rollup()
        total = sum(rollup.values())
        if total <= 0:
            return {name: 0.0 for name in rollup}
        return {name: secs / total for name, secs in rollup.items()}
